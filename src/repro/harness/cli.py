"""Command-line driver, mirroring the Altis harness interface.

Altis binaries accept ``--size``, ``--passes``, ``--device``, ``--quiet``
and report through a ResultDB; this module gives the reproduction the
same surface::

    python -m repro run KMeans --size 1 --device rtx2080 --passes 3
    python -m repro list
    python -m repro figures fig2 fig4
    python -m repro profile fdtd2d --device rtx2080
    python -m repro perfdiff
    python -m repro migrate
    python -m repro synth KMeans --device stratix10

Each subcommand returns an exit status and prints human-readable text;
the CLI is a thin layer over :mod:`repro.harness`.
"""

from __future__ import annotations

import argparse
import sys

from ..altis import SIZES, Variant
from ..altis.registry import APP_FACTORIES, make_app
from ..perfmodel.spec import DEVICE_SPECS, get_spec
from .resultdb import ResultDB

__all__ = ["main", "build_parser", "run_benchmark", "resolve_config"]


def _add_trace_args(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument("--trace", action="store_true",
                            help="record an execution trace of this command")
    sub_parser.add_argument("--trace-out", default=None, metavar="PATH",
                            help="Chrome-trace JSON output path "
                                 "(default: trace.json; open in "
                                 "chrome://tracing)")


def _add_resilience_args(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument("--retries", type=int, default=0, metavar="N",
                            help="retry transient cell failures up to N "
                                 "times (exponential backoff with "
                                 "deterministic jitter)")
    sub_parser.add_argument("--cell-timeout", type=float, default=None,
                            metavar="SECONDS",
                            help="cooperative per-cell deadline; a cell "
                                 "past it fails with CellTimeoutError "
                                 "(retried when --retries is set)")
    sub_parser.add_argument("--inject-faults", default=None, metavar="SPEC",
                            help="deterministic fault plan, e.g. "
                                 "'cell:exception:0.2' or "
                                 "'launch:slow:0.1:delay=0.01,"
                                 "cache:corrupt:0.5' "
                                 "(site:kind:rate[:persist=N][:delay=S]"
                                 "[:match=SUBSTR])")
    sub_parser.add_argument("--fault-seed", type=int, default=0, metavar="N",
                            help="seed of the fault plan's Philox decision "
                                 "stream")


def _build_resilience(args):
    """(retry policy, fault plan) from the parsed resilience flags."""
    from ..resilience import FaultPlan, RetryPolicy

    policy = (RetryPolicy(max_attempts=args.retries + 1)
              if args.retries > 0 else None)
    plan = (FaultPlan.parse(args.inject_faults, seed=args.fault_seed)
            if args.inject_faults else None)
    return policy, plan


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Altis-SYCL reproduction driver",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one benchmark functionally")
    run.add_argument("benchmark", choices=sorted(APP_FACTORIES))
    run.add_argument("--size", type=int, default=1, choices=SIZES)
    run.add_argument("--device", default="rtx2080",
                     choices=sorted(DEVICE_SPECS))
    run.add_argument("--passes", type=int, default=1)
    run.add_argument("--scale", type=float, default=None,
                     help="functional problem scale (default: test scale)")
    run.add_argument("--variant", default="sycl_opt",
                     choices=[v.value for v in Variant])
    run.add_argument("--mode", default=None,
                     choices=["auto", "vector", "group", "item", "compiled"],
                     help="pin one executor path for kernels that "
                          "implement it (default: auto)")
    run.add_argument("--quiet", action="store_true")
    _add_trace_args(run)
    _add_resilience_args(run)

    sub.add_parser("list", help="list benchmarks and devices")

    figures = sub.add_parser("figures", help="regenerate paper figures")
    figures.add_argument("which", nargs="+",
                         choices=["fig1", "fig2", "fig4", "fig5", "table2",
                                  "table3"])
    figures.add_argument("--workers", type=int, default=None,
                         help="worker-pool size for the figure sweeps "
                              "(default: serial)")
    figures.add_argument("--no-cache", action="store_true",
                         help="disable the persistent figure cache")
    figures.add_argument("--cache-dir", default=None,
                         help="figure-cache directory (default: "
                              "$REPRO_CACHE_DIR or .repro_cache)")
    _add_trace_args(figures)

    suite = sub.add_parser("suite",
                           help="run the functional verification sweep")
    suite.add_argument("--device", default="rtx2080",
                       choices=sorted(DEVICE_SPECS))
    suite.add_argument("--variant", default="sycl_opt",
                       choices=[v.value for v in Variant])
    suite.add_argument("--workers", type=int, default=None)
    suite.add_argument("--mode", default=None,
                       choices=["auto", "vector", "group", "item", "compiled"],
                       help="pin one executor path for kernels that "
                            "implement it (default: auto)")
    suite.add_argument("--on-error", default="abort",
                       choices=["abort", "degrade"],
                       help="abort: first unrecovered cell failure stops "
                            "the sweep (exit 1); degrade: failed cells "
                            "become FailedCell report rows and the sweep "
                            "exits 0")
    suite.add_argument("--journal", default=None, metavar="PATH",
                       help="append-only sweep journal (JSONL, fsync'd); "
                            "completed cells are checkpointed here "
                            "(default with --resume: "
                            ".repro_sweep.journal)")
    suite.add_argument("--resume", action="store_true",
                       help="skip cells already completed in the journal "
                            "and merge their results into the report")
    _add_trace_args(suite)
    _add_resilience_args(suite)

    bench = sub.add_parser("bench",
                           help="steady-state launch benchmarks "
                                "(plan-cache trajectory)")
    bench.add_argument("--quick", action="store_true",
                       help="CI-sized run: fewer best-of repetitions and "
                            "the smaller figure sweep")
    bench.add_argument("--repeats", type=int, default=None, metavar="N",
                       help="measurement trials per benchmark "
                            "(default: 3, or 2 with --quick)")
    bench.add_argument("--out", default=None, metavar="PATH",
                       help="benchmark record file to append the "
                            "trajectory record to "
                            "(default: BENCH_executor.json)")
    _add_trace_args(bench)

    profile = sub.add_parser(
        "profile", help="run one benchmark under tracing and write a "
                        "per-kernel profile report")
    profile.add_argument("benchmark",
                         help="benchmark name, case/spacing-insensitive "
                              "(e.g. nw, fdtd2d, pf-naive; see "
                              "'repro list')")
    profile.add_argument("--device", default="rtx2080",
                         choices=sorted(DEVICE_SPECS))
    profile.add_argument("--variant", default="sycl_opt",
                         choices=[v.value for v in Variant])
    profile.add_argument("--mode", default=None,
                         choices=["auto", "vector", "group", "item", "compiled"],
                         help="pin one executor path for kernels that "
                              "implement it (default: auto)")
    profile.add_argument("--scale", type=float, default=None,
                         help="functional problem scale (default: 2x the "
                              "functional test scale)")
    profile.add_argument("--seed", type=int, default=0,
                         help="workload seed")
    profile.add_argument("--quick", action="store_true",
                         help="CI-sized run: profile at the functional "
                              "test scale instead of 2x")
    profile.add_argument("--out", default=None, metavar="DIR",
                         help="artifact directory for profile.json / "
                              "profile.md / profile.folded / trace.json "
                              "(default: profile_<benchmark>)")
    profile.add_argument("--quiet", action="store_true",
                         help="write the artifacts without printing the "
                              "report")

    perfdiff = sub.add_parser(
        "perfdiff", help="compare the last two bench trajectory records; "
                         "exit 1 on regression")
    perfdiff.add_argument("--bench", default="BENCH_executor.json",
                          metavar="PATH",
                          help="trajectory file written by 'repro bench' "
                               "(default: BENCH_executor.json)")

    sub.add_parser("migrate", help="print the §3.2 migration report")

    synth = sub.add_parser("synth", help="synthesize an FPGA design")
    synth.add_argument("benchmark", choices=sorted(APP_FACTORIES))
    synth.add_argument("--device", default="stratix10",
                       choices=["stratix10", "agilex"])
    synth.add_argument("--size", type=int, default=3, choices=SIZES)
    synth.add_argument("--baseline", action="store_true",
                       help="build the non-optimized design")

    serve = sub.add_parser(
        "serve", help="run the multi-tenant sweep service (HTTP job "
                      "server; see docs/service.md)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1; the "
                           "service has no auth layer — do not bind "
                           "public interfaces directly)")
    serve.add_argument("--port", type=int, default=8077,
                       help="listen port (default: 8077; 0 picks an "
                            "ephemeral port)")
    serve.add_argument("--root", default=".repro_service", metavar="DIR",
                       help="service state root: per-tenant journals, "
                            "artifacts, and caches live here "
                            "(default: .repro_service)")
    serve.add_argument("--workers", type=int, default=4, metavar="N",
                       help="sweep worker threads executing jobs "
                            "(default: 4)")
    serve.add_argument("--max-active-jobs", type=int, default=8,
                       metavar="N",
                       help="per-tenant cap on simultaneously "
                            "queued/running jobs (default: 8)")
    serve.add_argument("--max-cells", type=int, default=100_000,
                       metavar="N",
                       help="per-tenant lifetime budget of sweep cells "
                            "(default: 100000)")

    loadgen = sub.add_parser(
        "loadgen", help="drive synthetic clients against a sweep "
                        "service; exit 1 on dropped jobs or report "
                        "mismatches")
    loadgen.add_argument("--url", default=None, metavar="URL",
                         help="target service base URL (default: "
                              "self-host an in-process service)")
    loadgen.add_argument("--clients", type=int, default=50, metavar="N",
                         help="concurrent client threads (default: 50)")
    loadgen.add_argument("--jobs-per-client", type=int, default=1,
                         metavar="N",
                         help="jobs each client submits (default: 1)")
    loadgen.add_argument("--tenants", type=int, default=2, metavar="N",
                         help="tenants the clients spread across "
                              "(default: 2)")
    loadgen.add_argument("--quick", action="store_true",
                         help="CI-sized jobs: every sweep is the 1-cell "
                              "'Where' config")
    loadgen.add_argument("--inject-faults", default=None, metavar="SPEC",
                         help="fault plan for every submitted job "
                              "(same grammar as 'repro suite "
                              "--inject-faults')")
    loadgen.add_argument("--retries", type=int, default=2, metavar="N",
                         help="per-job retry budget (default: 2)")
    loadgen.add_argument("--service-workers", type=int, default=8,
                         metavar="N",
                         help="worker threads of the self-hosted "
                              "service (ignored with --url; default: 8)")
    loadgen.add_argument("--out", default=None, metavar="DIR",
                         help="artifact directory for loadgen.json / "
                              "metrics.json / tenants.json / trace.json")
    return parser


def run_benchmark(config: str, size: int, device_key: str, passes: int,
                  variant: Variant, scale: float | None,
                  db: ResultDB, mode: str | None = None,
                  retry=None, cell_timeout: float | None = None,
                  fault_plan=None) -> None:
    """Execute one benchmark ``passes`` times into a ResultDB.

    ``retry``/``cell_timeout``/``fault_plan`` wrap each pass in the
    resilience layer (:func:`repro.resilience.call_with_retry`), so a
    single ``run`` survives transient faults the same way a sweep cell
    does."""
    from functools import partial

    from .runner import _DEFAULT_SCALES, run_functional

    if mode == "auto":
        mode = None
    scale = scale if scale is not None else _DEFAULT_SCALES.get(config, 0.02)
    resilient = (retry is not None or cell_timeout is not None
                 or fault_plan is not None)
    for pass_idx in range(passes):
        one = partial(run_functional, config, device_key, variant,
                      scale=scale, seed=pass_idx, mode=mode)
        if resilient:
            from ..resilience import call_with_retry, poll

            key = f"{config}#pass{pass_idx}"

            def attempt(one=one, key=key):
                poll("cell", key, phase="pre")
                value = one()
                poll("cell", key, phase="post")
                return value

            result = call_with_retry(attempt, policy=retry, key=key,
                                     deadline_s=cell_timeout,
                                     plan=fault_plan)
        else:
            result = one()
        db.add_result(config, "kernel_time", "s", result.modeled_kernel_s)
        db.add_result(config, "total_time", "s", result.modeled_total_s)
    # the analytical layer's full-size estimate, once
    app = make_app(config)
    if variant in (Variant.FPGA_BASE, Variant.FPGA_OPT):
        if get_spec(device_key).is_fpga:
            t = app.fpga_time(size, variant is Variant.FPGA_OPT, device_key)
            db.add_result(config, f"modeled_size{size}", "s", t.total_s)
    else:
        t = app.reported_time_s(size, variant, device_key)
        db.add_result(config, f"modeled_size{size}", "s", t)


def _cmd_run(args) -> int:
    db = ResultDB()
    policy, plan = _build_resilience(args)
    run_benchmark(args.benchmark, args.size, args.device, args.passes,
                  Variant(args.variant), args.scale, db, mode=args.mode,
                  retry=policy, cell_timeout=args.cell_timeout,
                  fault_plan=plan)
    if not args.quiet:
        print(db.render())
    return 0


def _cmd_list(_args) -> int:
    print("benchmarks:")
    for name in sorted(APP_FACTORIES):
        print(f"  {name}")
    print("devices:")
    for key, spec in DEVICE_SPECS.items():
        print(f"  {key:<10} {spec.name}")
    return 0


def _cmd_figures(args) -> int:
    from . import experiments, reporting
    from .resultdb import FigureCache

    cache = FigureCache(root=args.cache_dir, enabled=not args.no_cache)
    workers = args.workers
    for which in args.which:
        if which == "fig1":
            print(reporting.render_figure1(experiments.figure1(cache=cache),
                                           experiments.PAPER_FIG1))
        elif which == "fig2":
            print(reporting.render_speedup_grid(
                "Figure 2 (optimized SYCL vs CUDA, RTX 2080)",
                experiments.figure2(True, workers=workers, cache=cache),
                experiments.PAPER_FIG2_OPTIMIZED))
        elif which == "fig4":
            print(reporting.render_speedup_grid(
                "Figure 4 (FPGA optimized vs baseline, Stratix 10)",
                experiments.figure4(workers=workers, cache=cache),
                experiments.PAPER_FIG4))
        elif which == "fig5":
            fig5 = experiments.figure5(workers=workers, cache=cache)
            print(reporting.render_figure5(
                fig5, experiments.PAPER_FIG5,
                experiments.figure5_geomeans(fig5),
                experiments.PAPER_FIG5_GEOMEANS))
        elif which == "table2":
            print(reporting.render_table2(experiments.table2()))
        elif which == "table3":
            from ..fpga import render_table3

            print(render_table3(experiments.table3()))
        print()
    return 0


def _cmd_suite(args) -> int:
    from ..common.errors import CellExecutionError
    from ..resilience import FailedCell
    from .reporting import render_suite_report
    from .runner import run_suite_functional

    mode = None if args.mode == "auto" else args.mode
    policy, plan = _build_resilience(args)
    journal = args.journal
    if journal is None and args.resume:
        journal = ".repro_sweep.journal"
    degrade = args.on_error == "degrade"
    try:
        results = run_suite_functional(
            args.device, Variant(args.variant), workers=args.workers,
            mode=mode, retry=policy, cell_timeout=args.cell_timeout,
            fault_plan=plan, degrade=degrade, journal=journal,
            resume=args.resume)
    except CellExecutionError as exc:
        print(f"suite aborted: {exc}")
        if journal is not None:
            print(f"completed cells are journaled in {journal}; "
                  "re-run with --resume to continue")
        return 1
    print(render_suite_report(results))
    # Degrade mode forgives FailedCell rows (that is its contract), but a
    # cell that executed and failed golden verification is a correctness
    # regression in any mode.
    verified = all(getattr(r, "verified", False) for r in results
                   if not isinstance(r, FailedCell))
    if degrade:
        return 0 if verified else 1
    return 0 if verified and not any(
        isinstance(r, FailedCell) for r in results) else 1


def _cmd_bench(args) -> int:
    import time

    from ..common.errors import ReproError
    from .bench import render_bench, run_bench

    # the CLI stamps the record; run_bench itself stays clock-free when
    # a caller supplies the timestamp
    timestamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    try:
        record, path = run_bench(args.out, quick=args.quick,
                                 repeats=args.repeats, timestamp=timestamp)
    except ReproError as exc:
        print(f"bench failed verification: {exc}")
        return 1
    print(render_bench(record))
    print(f"trajectory record appended to {path}")
    return 0


def resolve_config(name: str) -> str:
    """Registry key for a case/spacing-insensitive benchmark name.

    ``nw`` / ``NW``, ``fdtd2d`` / ``FDTD2D``, ``pf-naive`` / ``PF
    Naive`` all resolve; unknown names raise ``SystemExit`` with the
    available list (argparse-style)."""
    import re

    def norm(s: str) -> str:
        return re.sub(r"[\s_-]+", "", s).lower()

    wanted = norm(name)
    for key in APP_FACTORIES:
        if norm(key) == wanted:
            return key
    raise SystemExit(
        f"repro profile: unknown benchmark {name!r}; "
        f"choose from {sorted(APP_FACTORIES)}")


def _cmd_profile(args) -> int:
    from ..sycl.plan import clear_plan_caches
    from ..trace.profile import profile_functional, render_profile, \
        write_profile
    from .runner import _DEFAULT_SCALES

    config = resolve_config(args.benchmark)
    scale = args.scale
    if scale is None:
        base = _DEFAULT_SCALES.get(config, 0.02)
        scale = base if args.quick else base * 2
    mode = None if args.mode == "auto" else args.mode
    clear_plan_caches()  # within-run compile/hit counts, not leftovers
    run = profile_functional(config, device_key=args.device,
                             variant=args.variant, mode=mode,
                             scale=scale, seed=args.seed)
    out = args.out or f"profile_{args.benchmark.lower().replace(' ', '_')}"
    paths = write_profile(out, run)
    if not args.quiet:
        print(render_profile(run.profile))
    print("profile artifacts:")
    for name, path in paths.items():
        print(f"  {name:<16} {path}")
    return 0


def _cmd_perfdiff(args) -> int:
    from .perfdiff import perfdiff, render_perfdiff

    result = perfdiff(args.bench)
    print(render_perfdiff(result))
    return result.exit_code


def _cmd_migrate(_args) -> int:
    from .experiments import migration_report

    print(migration_report().render())
    return 0


def _cmd_synth(args) -> int:
    from ..common.errors import ReproError
    from ..fpga.synthesis import synthesize

    app = make_app(args.benchmark)
    try:
        setup = app.fpga_setup(args.size, not args.baseline, args.device)
        syn = synthesize(setup.design, get_spec(args.device))
    except ReproError as exc:
        print(f"synthesis failed: {exc}")
        return 1
    util = syn.utilization_percent()
    print(f"design   : {syn.design_name}")
    print(f"device   : {syn.device_key}")
    print(f"ALM      : {util['alm']:.1f}%")
    print(f"BRAM     : {util['bram']:.1f}%")
    print(f"DSP      : {util['dsp']:.1f}%")
    print(f"Fmax     : {syn.fmax_mhz:.1f} MHz")
    print(f"kernels  : {len(setup.design.kernels)}")
    return 0


def _cmd_serve(args) -> int:
    from ..service.http import serve
    from ..service.tenants import TenantQuota

    quota = TenantQuota(max_active_jobs=args.max_active_jobs,
                        max_total_cells=args.max_cells)
    return serve(args.root, host=args.host, port=args.port,
                 workers=args.workers, default_quota=quota)


def _cmd_loadgen(args) -> int:
    from ..service.loadgen import LoadgenError, run_loadgen

    try:
        run_loadgen(args.url, clients=args.clients,
                    jobs_per_client=args.jobs_per_client,
                    tenants=args.tenants, quick=args.quick,
                    inject_faults=args.inject_faults, retries=args.retries,
                    service_workers=args.service_workers, out=args.out)
    except LoadgenError as exc:
        print(f"loadgen FAILED: {exc}")
        return 1
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "list": _cmd_list,
    "figures": _cmd_figures,
    "suite": _cmd_suite,
    "bench": _cmd_bench,
    "profile": _cmd_profile,
    "perfdiff": _cmd_perfdiff,
    "migrate": _cmd_migrate,
    "synth": _cmd_synth,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    command = _COMMANDS[args.command]
    if not getattr(args, "trace", False):
        return command(args)
    return _run_traced(command, args)


def _run_traced(command, args) -> int:
    """Run one CLI command under a fresh tracer and export the trace."""
    from ..trace import metrics, tracing, write_chrome_trace
    from . import reporting

    with tracing() as tracer:
        with tracer.span(f"repro:{args.command}", "run",
                         command=args.command):
            status = command(args)
        events = tracer.events()
    out = args.trace_out or "trace.json"
    path = write_chrome_trace(out, events,
                              metrics=metrics.registry.snapshot())
    quiet = getattr(args, "quiet", False)
    if not quiet:
        launches = sum(1 for ev in events if ev.cat == "launch")
        if launches:
            print(reporting.render_trace_table(events))
        print(f"trace: {len(events)} spans -> {path} "
              "(load in chrome://tracing)")
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
