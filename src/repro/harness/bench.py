"""Steady-state launch benchmarks — the ``repro bench`` harness.

The launch-plan compiler (:mod:`repro.sycl.plan`) exists to amortize
per-launch dispatch work across the repeated, identically-shaped
launches that dominate the Altis steady state — the pattern behind the
paper's Fig. 1 split of kernel time vs. everything around it.  This
module measures that amortization on three workloads and appends a
schema-versioned record to ``BENCH_executor.json`` so the performance
trajectory of the executor is tracked across commits:

* **NW blocked wavefront** — the canonical barrier-heavy repeated-launch
  workload (``2*nb - 1`` launches per alignment).  Measured three ways:
  the legacy un-planned path, the warm planned path, and an in-benchmark
  *floor* (raw generator drive of the same wavefront with pooled
  work-groups — the irreducible kernel-body cost).  The headline number
  is the **per-launch dispatch overhead ratio**: ``(unplanned - floor)``
  vs ``(planned - floor)``, per launch.  Wall-clock speedup is recorded
  honestly alongside (the kernel body dominates wall time, so wall
  speedup is modest by construction).
* **SRAD group path** — repeated identically-shaped 2-D launches of the
  two diffusion kernels, planned vs un-planned, asserting byte-identical
  images.
* **Executor tiers** — the same SRAD loop through the per-item
  interpreter, the group interpreter, and the compiled (batched-numpy)
  tier of :mod:`repro.sycl.vectorize`, asserting the compiled image is
  byte-identical to the per-item one and recording the compiled-tier
  speedups plus where every cached plan landed.
* **Figure sweep** — cold vs warm rebuild of a paper figure through a
  fresh :class:`~repro.harness.resultdb.FigureCache`.

Every benchmark verifies its outputs (NW against :func:`nw_reference`;
SRAD and the figure sweep planned-vs-unplanned byte equality) and raises
:class:`~repro.common.errors.ReproError` on mismatch — a benchmark that
got fast by being wrong must fail loudly.

Command line::

    python -m repro bench --quick          # CI-sized run
    python -m repro bench --repeats 5      # more trials per benchmark
    python -m repro bench --out BENCH.json

Records append under the ``"trajectory"`` key; each carries
``"schema": "repro-bench/1"`` so downstream tooling can detect format
drift (the CI bench job diffs the schema against the previous record).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from ..common.errors import ReproError

__all__ = [
    "BENCH_SCHEMA",
    "bench_environment",
    "bench_nw_wavefront",
    "bench_srad_group",
    "bench_executor_tiers",
    "bench_figure_sweep",
    "run_bench",
    "append_trajectory",
    "render_bench",
]

#: Schema tag carried by every trajectory record.  Bump on any change to
#: the record's key structure so the CI schema diff flags it.
BENCH_SCHEMA = "repro-bench/1"


def _best(fn, best_of: int) -> tuple[float, object]:
    """Best-of-N timing: minimum elapsed and the last returned payload."""
    best_s = float("inf")
    payload = None
    for _ in range(best_of):
        elapsed, payload = fn()
        if elapsed < best_s:
            best_s = elapsed
    return best_s, payload


# ---------------------------------------------------------------------------
# NW blocked wavefront: planned vs un-planned vs raw-generator floor
# ---------------------------------------------------------------------------

def bench_nw_wavefront(*, n: int = 32, block: int = 4, seed: int = 7,
                       trials: int = 3, best_of: int = 7) -> dict:
    """Steady-state NW wavefront: per-launch dispatch overhead ratio.

    Uses a custom block size (``nw_reference`` is block-independent, so
    the scores still verify) to get a launch-dominated shape: small
    tiles, many launches, little kernel body per launch.
    """
    from ..altis.nw import ALPHABET, _similarity, nw_reference
    from ..altis.nw import NW
    from ..sycl import NdRange, Range
    from ..sycl.buffer import LocalAccessor
    from ..sycl.executor import run_nd_range
    from ..sycl.ndrange import Group
    from ..sycl.plan import clear_plan_caches, plan_cache_info

    if n % block != 0:
        raise ReproError(f"n={n} not divisible by block={block}")
    rng = np.random.default_rng(seed)
    seq_a = rng.integers(0, ALPHABET, size=n, dtype=np.int64)
    seq_b = rng.integers(0, ALPHABET, size=n, dtype=np.int64)
    blosum = rng.integers(-4, 12, size=(ALPHABET, ALPHABET), dtype=np.int32)
    blosum = ((blosum + blosum.T) // 2).astype(np.int32)
    penalty = 10
    nb = n // block
    launches = 2 * nb - 1
    sim = _similarity(seq_a, seq_b, blosum).astype(np.int32)
    expected = nw_reference(seq_a, seq_b, blosum, penalty)
    kern = NW().kernels()["needle_block"]
    group_fn = kern.group_fn
    tile = LocalAccessor((block + 1, block + 1), np.int32)

    base = np.zeros((n + 1, n + 1), dtype=np.int32)
    base[0, :] = -penalty * np.arange(n + 1)
    base[:, 0] = -penalty * np.arange(n + 1)

    def wavefront(use_plan: bool):
        score = base.copy()
        t0 = time.perf_counter()
        for d in range(launches):
            blocks = (d + 1) if d < nb else (2 * nb - 1 - d)
            run_nd_range(kern, NdRange(Range(blocks * block), Range(block)),
                         (score, sim, tile, penalty, d, nb, n, block),
                         force_item=True, use_plan=use_plan)
        return time.perf_counter() - t0, score

    # The floor: drive the same group generators directly with pooled
    # work-groups (local tiles retained, the same concession the plan's
    # ``local_mem_reuse`` pooling gets).  Everything above this cost is
    # dispatch overhead — the quantity plans exist to eliminate.
    pooled = []
    for d in range(launches):
        blocks = (d + 1) if d < nb else (2 * nb - 1 - d)
        nd = NdRange(Range(blocks * block), Range(block))
        pooled.append([Group((g,), nd) for g in range(blocks)])

    def floor_run():
        score = base.copy()
        t0 = time.perf_counter()
        for d in range(launches):
            for g in pooled[d]:
                for _ in group_fn(g, score, sim, tile, penalty, d, nb, n,
                                  block):
                    pass
        return time.perf_counter() - t0, score

    clear_plan_caches()
    wavefront(True)  # compile the per-diagonal plans once
    unplanned_s, warm_s, floor_s = [], [], []
    ratios, walls = [], []
    for _ in range(trials):
        unp, s_unp = _best(lambda: wavefront(False), best_of)
        warm, s_warm = _best(lambda: wavefront(True), best_of)
        floor, s_floor = _best(floor_run, best_of)
        for name, s in (("unplanned", s_unp), ("planned", s_warm),
                        ("floor", s_floor)):
            if s.tobytes() != expected.tobytes():
                raise ReproError(
                    f"NW bench: {name} wavefront diverged from nw_reference")
        ovh_un = (unp - floor) / launches * 1e6
        # clamp: machine noise can push the warm residual to ~zero or
        # negative; the ratio is then reported against a conservative
        # denominator rather than exploding
        ovh_pl = max((warm - floor) / launches * 1e6, ovh_un / 100, 1e-3)
        unplanned_s.append(round(unp, 6))
        warm_s.append(round(warm, 6))
        floor_s.append(round(floor, 6))
        ratios.append(round(ovh_un / ovh_pl, 2))
        walls.append(round(unp / warm, 3))
    info = plan_cache_info()
    return {
        "workload": (f"NW blocked wavefront, n={n}, block={block}, "
                     "force_item=True, verified vs nw_reference"),
        "launches": launches,
        "items": sum(((d + 1) if d < nb else (2 * nb - 1 - d)) * block
                     for d in range(launches)),
        "trials": trials,
        "best_of": best_of,
        "unplanned_s": unplanned_s,
        "warm_planned_s": warm_s,
        "floor_s": floor_s,
        "overhead_ratio_trials": ratios,
        "overhead_ratio": max(ratios),
        "wall_speedup_trials": walls,
        "wall_speedup": max(walls),
        "byte_identical": True,
        "plan_cache": {"compiles": info["compiles"], "hits": info["hits"],
                       "size": info["size"]},
    }


# ---------------------------------------------------------------------------
# SRAD group path: planned vs un-planned, byte-identical images
# ---------------------------------------------------------------------------

def bench_srad_group(*, scale: float = 0.016, iterations: int = 8,
                     seed: int = 11, best_of: int = 5) -> dict:
    """Repeated identically-shaped 2-D launches of the SRAD kernels.

    Every iteration launches ``srad1`` then ``srad2`` on the same
    nd_range — after the first iteration the plan cache serves every
    launch warm.  Asserts the planned and un-planned images are
    byte-identical.
    """
    from ..altis.srad import Srad
    from ..sycl import NdRange, Range
    from ..sycl.executor import run_nd_range
    from ..sycl.plan import clear_plan_caches

    app = Srad()
    wl = app.generate(1, seed=seed, scale=scale)
    rows, cols = wl.params["rows"], wl.params["cols"]
    lam = wl.params["lam"]
    ks = app.kernels()
    k1, k2 = ks["srad1"], ks["srad2"]
    wg = 16 if min(rows, cols) >= 16 else 8
    gr = -(-rows // wg) * wg
    gc = -(-cols // wg) * wg
    nd_shape = ((gr, gc), (wg, wg))
    base = wl["img"].astype(np.float32)

    def diffuse(use_plan: bool):
        img = base.copy()
        c_arr = np.zeros_like(img)
        dN = np.zeros_like(img)
        dS = np.zeros_like(img)
        dW = np.zeros_like(img)
        dE = np.zeros_like(img)
        t0 = time.perf_counter()
        for _ in range(iterations):
            mean = img[:rows, :cols].mean()
            var = img[:rows, :cols].var()
            q0sqr = var / (mean * mean)
            nd = NdRange(Range(*nd_shape[0]), Range(*nd_shape[1]))
            run_nd_range(k1, nd, (img, c_arr, dN, dS, dW, dE, q0sqr,
                                  rows, cols), mode="group",
                         use_plan=use_plan)
            run_nd_range(k2, nd, (img, c_arr, dN, dS, dW, dE, lam,
                                  rows, cols), mode="group",
                         use_plan=use_plan)
        return time.perf_counter() - t0, img

    clear_plan_caches()
    diffuse(True)  # compile the two plans
    unp_s, img_unp = _best(lambda: diffuse(False), best_of)
    warm_s, img_warm = _best(lambda: diffuse(True), best_of)
    if img_warm.tobytes() != img_unp.tobytes():
        raise ReproError("SRAD bench: planned image diverged from un-planned")
    return {
        "workload": (f"SRAD group path, {rows}x{cols}, "
                     f"{iterations} iterations (2 launches each)"),
        "launches": 2 * iterations,
        "best_of": best_of,
        "unplanned_s": round(unp_s, 6),
        "warm_planned_s": round(warm_s, 6),
        "wall_speedup": round(unp_s / warm_s, 3),
        "byte_identical": True,
    }


# ---------------------------------------------------------------------------
# Execution tiers: compiled (batched numpy) vs group vs per-item on SRAD
# ---------------------------------------------------------------------------

def bench_executor_tiers(*, scale: float = 0.016, iterations: int = 8,
                         seed: int = 11, best_of: int = 5) -> dict:
    """Compiled tier vs the group and per-item interpreters on SRAD.

    The same diffusion loop as :func:`bench_srad_group`, run three ways:
    ``mode="item"`` (the per-item interpreter — the reference the
    compiled tier validates against), ``mode="group"`` (per-work-group
    numpy), and ``mode="compiled"`` (the batched program from
    :mod:`repro.sycl.vectorize`, evaluated once per launch over the
    memoized index lattice).  Asserts the compiled image is
    byte-identical to the per-item one, and records where each plan
    landed (:func:`plan_cache_info`'s ``tiers``) plus how many kernels
    fell back (``vectorize.fallback``) during an NW run in compiled
    mode — NW's blocked wavefront kernel is barrier- and
    local-tile-shaped, and since the dialect gained local-memory lanes
    it promotes, so the probe documents **zero** fallbacks.

    A second pass times the dialect-widening holdout apps end to end
    (``run_sycl`` under ``default_mode="item"`` vs ``"compiled"``),
    byte-compares their outputs, and records per-app speedups under
    ``apps`` — the perf gate for the static-loop/local-tile/builtin
    widenings (NW, KMeans, Mandelbrot, CFD, LavaMD).
    """
    from ..altis.srad import Srad
    from ..sycl import NdRange, Range
    from ..sycl.executor import run_nd_range
    from ..sycl.plan import clear_plan_caches, plan_cache_info
    from ..trace.metrics import registry

    app = Srad()
    wl = app.generate(1, seed=seed, scale=scale)
    rows, cols = wl.params["rows"], wl.params["cols"]
    lam = wl.params["lam"]
    ks = app.kernels()
    k1, k2 = ks["srad1"], ks["srad2"]
    wg = 16 if min(rows, cols) >= 16 else 8
    gr = -(-rows // wg) * wg
    gc = -(-cols // wg) * wg
    base = wl["img"].astype(np.float32)

    def diffuse(mode: str):
        img = base.copy()
        c_arr = np.zeros_like(img)
        dN = np.zeros_like(img)
        dS = np.zeros_like(img)
        dW = np.zeros_like(img)
        dE = np.zeros_like(img)
        t0 = time.perf_counter()
        for _ in range(iterations):
            mean = img[:rows, :cols].mean()
            var = img[:rows, :cols].var()
            q0sqr = var / (mean * mean)
            nd = NdRange(Range(gr, gc), Range(wg, wg))
            run_nd_range(k1, nd, (img, c_arr, dN, dS, dW, dE, q0sqr,
                                  rows, cols), mode=mode)
            run_nd_range(k2, nd, (img, c_arr, dN, dS, dW, dE, lam,
                                  rows, cols), mode=mode)
        return time.perf_counter() - t0, img

    clear_plan_caches()
    # warm every tier's plans; the compiled plans' first launch is their
    # shadow-validation launch, so the timed runs below are all hot
    for mode in ("item", "group", "compiled"):
        diffuse(mode)
    tiers = plan_cache_info()["tiers"]
    item_s, img_item = _best(lambda: diffuse("item"), best_of)
    group_s, img_group = _best(lambda: diffuse("group"), best_of)
    compiled_s, img_compiled = _best(lambda: diffuse("compiled"), best_of)
    if img_compiled.tobytes() != img_item.tobytes():
        raise ReproError(
            "tier bench: compiled image diverged from the per-item "
            "interpreter")
    if img_group.tobytes() != img_item.tobytes():
        raise ReproError(
            "tier bench: group image diverged from the per-item interpreter")

    # NW in compiled mode: the wavefront kernel's LocalAccessor tile is
    # now part of the batchable dialect, so the fallback counter must
    # stay flat across a full compiled-mode run.
    fallback = registry.counter("vectorize.fallback")
    before = fallback.value
    from .runner import run_functional
    run_functional("NW", seed=seed, mode="compiled")
    nw_fallbacks = fallback.value - before

    # Holdout apps end to end: per-item interpreter vs compiled tier.
    from ..altis.registry import make_app
    from ..sycl.queue import Queue

    apps = {}
    for config, app_scale in (("Mandelbrot", 0.005), ("KMeans", 0.01),
                              ("NW", 0.02), ("CFD FP32", 0.002),
                              ("LavaMD", 0.3)):
        app = make_app(config)

        def once(mode, app=app, app_scale=app_scale):
            q = Queue("rtx2080", default_mode=mode)
            wl = app.generate(1, seed=seed, scale=app_scale)
            t0 = time.perf_counter()
            outputs = app.run_sycl(q, wl)
            return time.perf_counter() - t0, outputs

        once("compiled")  # compile + shadow-validate the plans
        app_item_s, out_item = _best(lambda: once("item"), best_of)
        app_comp_s, out_comp = _best(lambda: once("compiled"), best_of)
        for key in out_item:
            if (np.asarray(out_item[key]).tobytes()
                    != np.asarray(out_comp[key]).tobytes()):
                raise ReproError(
                    f"tier bench: {config} compiled output {key!r} diverged "
                    "from the per-item interpreter")
        apps[config] = {
            "scale": app_scale,
            "item_s": round(app_item_s, 6),
            "compiled_s": round(app_comp_s, 6),
            "compiled_vs_item": round(app_item_s / app_comp_s, 2),
        }

    return {
        "workload": (f"SRAD tiers, {rows}x{cols}, {iterations} iterations "
                     "(2 launches each), identical inputs per tier"),
        "launches": 2 * iterations,
        "best_of": best_of,
        "item_s": round(item_s, 6),
        "group_s": round(group_s, 6),
        "compiled_s": round(compiled_s, 6),
        "compiled_vs_item": round(item_s / compiled_s, 2),
        "compiled_vs_group": round(group_s / compiled_s, 2),
        "byte_identical": True,
        "tiers": dict(sorted(tiers.items())),
        "nw_compiled_fallbacks": nw_fallbacks,
        "apps": apps,
    }


# ---------------------------------------------------------------------------
# Figure sweep: cold vs warm rebuild through the persistent cache
# ---------------------------------------------------------------------------

def bench_figure_sweep(*, quick: bool = False) -> dict:
    """Cold vs warm rebuild of paper figures through a fresh FigureCache."""
    from . import experiments
    from .resultdb import FigureCache, _encode

    def build(cache):
        out = {"fig2": experiments.figure2(True, cache=cache)}
        if not quick:
            out["fig4"] = experiments.figure4(cache=cache)
        return out

    with tempfile.TemporaryDirectory() as td:
        cache = FigureCache(td)
        experiments.clear_experiment_caches()
        t0 = time.perf_counter()
        cold = build(cache)
        cold_s = time.perf_counter() - t0
        experiments.clear_experiment_caches()  # only the disk cache survives
        t0 = time.perf_counter()
        warm = build(cache)
        warm_s = time.perf_counter() - t0
    cold_bytes = json.dumps(_encode(cold), sort_keys=True)
    warm_bytes = json.dumps(_encode(warm), sort_keys=True)
    if cold_bytes != warm_bytes:
        raise ReproError("figure bench: warm rebuild not byte-identical")
    return {
        "figures": sorted(cold),
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "speedup_warm_over_cold": round(cold_s / warm_s, 2),
        "byte_identical": True,
    }


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def append_trajectory(record: dict, path: Path) -> None:
    """Append ``record`` to ``path``'s ``"trajectory"`` list (created on
    first use; the file's other sections are preserved)."""
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except ValueError:
            data = {}
    data.setdefault("trajectory", []).append(record)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def bench_environment() -> dict:
    """The machine identity stamped into every trajectory record.

    ``repro perfdiff`` refuses to compare records whose environments
    differ — wall-clock trajectories only mean something on one machine.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


def run_bench(out: str | Path | None = None, *, quick: bool = False,
              repeats: int | None = None,
              timestamp: str | None = None) -> tuple[dict, Path]:
    """Run all steady-state benchmarks; append the trajectory record.

    Returns ``(record, path)``.  ``quick`` shrinks best-of counts and
    drops the slower figure from the sweep (the CI shape); ``repeats``
    overrides the per-benchmark trial count.  ``timestamp`` lets the
    caller stamp the record (the CLI does); ``None`` reads the clock
    here.
    """
    trials = repeats if repeats is not None else (2 if quick else 3)
    best_of = 3 if quick else 7
    if timestamp is None:
        timestamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    record = {
        "schema": BENCH_SCHEMA,
        "quick": quick,
        "timestamp": timestamp,
        "environment": bench_environment(),
        "nw_wavefront": bench_nw_wavefront(trials=trials, best_of=best_of),
        "srad_group": bench_srad_group(best_of=max(3, best_of - 2)),
        "executor_tiers": bench_executor_tiers(best_of=max(3, best_of - 2)),
        "figure_sweep": bench_figure_sweep(quick=quick),
    }
    path = Path(out) if out is not None else Path("BENCH_executor.json")
    append_trajectory(record, path)
    return record, path


def render_bench(record: dict) -> str:
    """Human-readable summary of one trajectory record."""
    nw = record["nw_wavefront"]
    srad = record["srad_group"]
    figs = record["figure_sweep"]
    lines = [
        f"repro bench ({record['schema']}"
        f"{', quick' if record['quick'] else ''})",
        "",
        f"NW wavefront   : {nw['launches']} launches/alignment, "
        f"best of {nw['best_of']} x {nw['trials']} trials",
        f"  dispatch overhead ratio (unplanned/planned): "
        f"{nw['overhead_ratio']:.2f}x  {nw['overhead_ratio_trials']}",
        f"  wall speedup (warm plans)                  : "
        f"{nw['wall_speedup']:.3f}x  {nw['wall_speedup_trials']}",
        f"  verified vs nw_reference, byte-identical   : "
        f"{nw['byte_identical']}",
        f"SRAD group path: {srad['launches']} launches, wall speedup "
        f"{srad['wall_speedup']:.3f}x, byte-identical {srad['byte_identical']}",
        f"figure sweep   : {'+'.join(figs['figures'])} warm rebuild "
        f"{figs['speedup_warm_over_cold']:.2f}x, byte-identical "
        f"{figs['byte_identical']}",
    ]
    tiers = record.get("executor_tiers")
    if tiers is not None:
        # tier entries are {"count", "fallbacks"} dicts (bare counts in
        # records older than the dialect widening)
        tier_counts = ", ".join(
            f"{k}={v['count'] if isinstance(v, dict) else v}"
            for k, v in sorted(tiers["tiers"].items()))
        extra = [
            f"executor tiers : compiled {tiers['compiled_s']*1e3:.2f} ms vs "
            f"item {tiers['item_s']*1e3:.2f} ms vs "
            f"group {tiers['group_s']*1e3:.2f} ms",
            f"  compiled speedup: {tiers['compiled_vs_item']:.2f}x vs item, "
            f"{tiers['compiled_vs_group']:.2f}x vs group, byte-identical "
            f"{tiers['byte_identical']}",
            f"  plan tiers      : {tier_counts}; NW compiled-mode fallbacks "
            f"{tiers['nw_compiled_fallbacks']}",
        ]
        apps = tiers.get("apps") or {}
        if apps:
            extra.append(
                "  app speedups    : " + ", ".join(
                    f"{k} {v['compiled_vs_item']:.2f}x"
                    for k, v in sorted(apps.items())))
        lines[-1:-1] = extra
    return "\n".join(lines)
