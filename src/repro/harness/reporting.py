"""ASCII rendering of the regenerated figures/tables, with paper-vs-model
comparison columns (the same rows the paper reports)."""

from __future__ import annotations

from ..altis.base import SIZES
from ..common.utils import geomean
from ..resilience import FailedCell
from ..trace.export import launch_table

__all__ = [
    "render_speedup_grid",
    "render_figure1",
    "render_figure5",
    "render_table2",
    "render_trace_table",
    "render_suite_report",
    "compare_ratio",
]


def compare_ratio(model: float, paper: float | None) -> str:
    """model/paper agreement factor, rendered compactly."""
    if paper is None or paper == 0:
        return "--"
    r = model / paper
    return f"{r:5.2f}x"


def render_speedup_grid(title: str, model: dict[str, tuple],
                        paper: dict[str, tuple] | None = None) -> str:
    lines = [title, "=" * max(60, len(title))]
    header = f"{'config':<14}" + "".join(f"{'s' + str(s) + ' model':>11}" for s in SIZES)
    if paper:
        header += "".join(f"{'s' + str(s) + ' paper':>11}" for s in SIZES)
        header += "   model/paper"
    lines.append(header)
    for config, row in model.items():
        cells = "".join(f"{v:>11.2f}" if v is not None else f"{'--':>11}" for v in row)
        if paper and config in paper:
            prow = paper[config]
            cells += "".join(
                f"{p:>11.2f}" if p is not None else f"{'--':>11}" for p in prow
            )
            ratios = [compare_ratio(m, p) for m, p in zip(row, prow)
                      if m is not None and p is not None]
            cells += "   " + " ".join(ratios)
        lines.append(f"{config:<14}" + cells)
    # geometric means over available cells (a column may be all-None)
    cells = []
    for i in range(len(SIZES)):
        vals = [row[i] for row in model.values() if row[i] is not None and row[i] > 0]
        cells.append(f"{geomean(vals):>11.2f}" if vals else f"{'--':>11}")
    lines.append(f"{'geomean':<14}" + "".join(cells))
    return "\n".join(lines)


def render_figure1(model: dict, paper: dict) -> str:
    lines = [
        "Figure 1: FDTD2D execution-time decomposition on the RTX 2080 [ms]",
        "=" * 70,
        f"{'size/runtime':<14}{'kernel':>10}{'non-kernel':>12}"
        f"{'paper k':>10}{'paper nk':>10}",
    ]
    for key, (k, nk) in sorted(model.items(), key=lambda kv: (kv[0][0], kv[0][1])):
        pk, pnk = paper.get(key, (None, None))
        lines.append(
            f"size {key[0]} {key[1]:<6}{k:>10.2f}{nk:>12.2f}"
            + (f"{pk:>10.1f}{pnk:>10.1f}" if pk is not None else "")
        )
    return "\n".join(lines)


def render_figure5(model: dict[str, dict[str, tuple]],
                   paper: dict[str, dict[str, tuple]],
                   geomeans_model: dict[str, tuple],
                   geomeans_paper: dict[str, tuple]) -> str:
    lines = ["Figure 5: relative speedup over the Xeon CPU",
             "=" * 70]
    for dev, rows in model.items():
        lines.append(f"\n[{dev}]")
        lines.append(f"{'config':<14}" + "".join(f"{'s'+str(s):>9}" for s in SIZES)
                     + "   paper: " + " ".join(f"{'s'+str(s):>7}" for s in SIZES))
        for config, row in rows.items():
            cells = "".join(f"{v:>9.2f}" if v is not None else f"{'--':>9}"
                            for v in row)
            prow = paper.get(dev, {}).get(config, (None,) * len(SIZES))
            pcells = " ".join(f"{p:>7.2f}" if p is not None else f"{'--':>7}"
                              for p in prow)
            lines.append(f"{config:<14}{cells}          {pcells}")
        gm = geomeans_model[dev]
        gp = geomeans_paper.get(dev)
        lines.append(f"{'geomean':<14}"
                     + "".join(f"{v:>9.2f}" for v in gm)
                     + ("          " + " ".join(f"{p:>7.2f}" for p in gp) if gp else ""))
    return "\n".join(lines)


def render_trace_table(events, *, limit: int | None = 40) -> str:
    """Flat per-launch view of a trace: wall time next to modeled time.

    One row per ``launch`` span — the textual counterpart of opening the
    Chrome trace, and the join Fig. 1 relies on (measured wall cost of a
    launch vs the modeled device/overhead split).
    """
    rows = launch_table(events)
    title = f"Per-launch trace table ({len(rows)} launches)"
    lines = [title, "=" * max(70, len(title))]
    header = (f"{'kernel':<24}{'path':<8}{'items':>9}{'groups':>8}"
              f"{'phases':>8}{'wall us':>12}{'model us':>12}{'ovh us':>10}")
    lines.append(header)
    shown = rows if limit is None else rows[:limit]
    for r in shown:
        lines.append(
            f"{r['kernel']:<24}{r['path']:<8}{r['items']:>9}{r['groups']:>8}"
            f"{r['barrier_phases']:>8}{r['wall_us']:>12.1f}"
            f"{r['modeled_device_us']:>12.2f}{r['modeled_overhead_us']:>10.2f}")
    if limit is not None and len(rows) > limit:
        lines.append(f"... {len(rows) - limit} more launches")
    if rows:
        wall = sum(r["wall_us"] for r in rows)
        model = sum(r["modeled_device_us"] for r in rows)
        ovh = sum(r["modeled_overhead_us"] for r in rows)
        lines.append(f"{'total':<24}{'':<8}{'':>9}{'':>8}{'':>8}"
                     f"{wall:>12.1f}{model:>12.2f}{ovh:>10.2f}")
    return "\n".join(lines)


def render_suite_report(results: list) -> str:
    """The suite sweep report: one line per cell, failures included.

    Successful cells print their modeled kernel/total times; failed
    cells (:class:`~repro.resilience.FailedCell`, degraded mode) print
    the error class, attempt count, and message.  The summary line
    counts degraded cells and verification failures separately — a cell
    that executed but did not verify is not a degraded row.  The
    rendering depends
    only on modeled quantities — never on wall-clock — so a resumed or
    retry-recovered sweep reproduces the uninterrupted report
    byte-for-byte.
    """
    lines = []
    ok = degraded = unverified = 0
    for r in results:
        if isinstance(r, FailedCell):
            degraded += 1
            name = r.config or r.key
            lines.append(f"{name:<14} FAIL  {r.error_kind} after "
                         f"{r.attempts} attempt(s): {r.message}")
            continue
        if r.verified:
            ok += 1
            status = "ok"
        else:
            unverified += 1
            status = "FAIL"
        lines.append(f"{r.config:<14} {status:<5} "
                     f"kernel={r.modeled_kernel_s:.3e}s "
                     f"total={r.modeled_total_s:.3e}s")
    summary = f"suite: {ok}/{len(results)} ok"
    if degraded:
        summary += f", {degraded} failed (degraded)"
    if unverified:
        summary += f", {unverified} verification failure(s)"
    lines.append(summary)
    return "\n".join(lines)


def render_table2(rows: list[dict]) -> str:
    lines = [
        "Table 2: Employed Accelerator Devices",
        "=" * 78,
        f"{'Device':<34}{'nm':>4}{'Compute units':>22}"
        f"{'TFLOP/s':>9}{'BW GB/s':>9}",
    ]
    for r in rows:
        lines.append(
            f"{r['device']:<34}{r['process_nm']:>4}{r['compute_units']:>22}"
            f"{r['peak_fp32_tflops']:>9.1f}{r['mem_bw_gbs']:>9.1f}"
        )
    return "\n".join(lines)
