"""Perf-regression sentinel over the bench trajectory — ``repro perfdiff``.

``repro bench`` (PR 4) appends a schema-versioned ``repro-bench/1``
record to ``BENCH_executor.json`` on every run, but until now nothing
watched the trajectory: a dispatch-overhead regression would land
silently.  This module compares the **last two** trajectory records
with per-metric tolerance bands and exits nonzero on regression, so CI
can gate on it right after the bench step.

Noise awareness is the whole design:

* wall-clock bench numbers on shared CI runners jitter by tens of
  percent, so each watched metric carries a *tolerance band* — the
  multiplicative headroom a new record gets before it counts as a
  regression (default 1.5x, far above run-to-run noise, far below a
  genuine 2x dispatch-overhead regression);
* list-valued timings (per-trial samples) are reduced with ``min``
  before comparison — best-of is the noise-robust summary the bench
  itself uses;
* records are only compared when they are *comparable*: same schema,
  same ``--quick`` shape, and the same stamped environment
  (:func:`~repro.harness.bench.bench_environment`) — cross-machine
  trajectories are refused with status ``"skipped"`` (exit 0), as are
  trajectories with fewer than two records.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "DEFAULT_TOLERANCES",
    "MetricDiff",
    "PerfDiffResult",
    "extract_metrics",
    "compare_records",
    "perfdiff",
    "render_perfdiff",
]


@dataclass(frozen=True)
class Watched:
    """One watched trajectory metric.

    ``higher_is_better`` flips the regression direction (ratios and
    speedups regress *down*; times regress *up*).  ``tolerance`` is the
    multiplicative band: a lower-better metric regresses when
    ``new > old * tolerance``, a higher-better one when
    ``new < old / tolerance``.
    """

    path: tuple
    tolerance: float = 1.5
    higher_is_better: bool = False


#: The watched metrics and their tolerance bands.  Chosen to catch the
#: failures the bench exists to detect (dispatch-overhead growth, plan
#: cache or figure cache breakage) while shrugging off CI noise.
DEFAULT_TOLERANCES: tuple = (
    Watched(("nw_wavefront", "warm_planned_s")),
    Watched(("nw_wavefront", "unplanned_s")),
    Watched(("nw_wavefront", "overhead_ratio"), higher_is_better=True),
    Watched(("srad_group", "warm_planned_s")),
    Watched(("executor_tiers", "compiled_s")),
    Watched(("executor_tiers", "compiled_vs_item"),
            higher_is_better=True, tolerance=2.0),
    # per-app compiled-tier speedups for the dialect-widening holdouts;
    # records predating the widening simply lack these paths
    Watched(("executor_tiers", "apps", "NW", "compiled_vs_item"),
            higher_is_better=True, tolerance=2.0),
    Watched(("executor_tiers", "apps", "KMeans", "compiled_vs_item"),
            higher_is_better=True, tolerance=2.0),
    Watched(("executor_tiers", "apps", "Mandelbrot", "compiled_vs_item"),
            higher_is_better=True, tolerance=2.0),
    Watched(("executor_tiers", "apps", "CFD FP32", "compiled_vs_item"),
            higher_is_better=True, tolerance=2.0),
    Watched(("executor_tiers", "apps", "LavaMD", "compiled_vs_item"),
            higher_is_better=True, tolerance=2.0),
    Watched(("figure_sweep", "warm_s")),
    Watched(("figure_sweep", "speedup_warm_over_cold"),
            higher_is_better=True, tolerance=2.0),
)


def _lookup(record: dict, path: tuple):
    node = record
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    if isinstance(node, list):
        node = min(node) if node else None
    return node if isinstance(node, (int, float)) else None


def extract_metrics(record: dict, watched=DEFAULT_TOLERANCES) -> dict:
    """The watched scalar values of one trajectory record (list-valued
    timings reduced with ``min``); missing metrics are omitted."""
    out = {}
    for w in watched:
        value = _lookup(record, w.path)
        if value is not None:
            out[".".join(w.path)] = value
    return out


@dataclass
class MetricDiff:
    """One watched metric's comparison."""

    name: str
    previous: float
    latest: float
    tolerance: float
    higher_is_better: bool
    regressed: bool

    @property
    def ratio(self) -> float:
        return self.latest / self.previous if self.previous else float("inf")


@dataclass
class PerfDiffResult:
    """Outcome of one trajectory comparison.

    ``status`` is ``"ok"``, ``"regression"``, or ``"skipped"`` (not
    comparable); :attr:`exit_code` maps regression to 1 and everything
    else to 0.
    """

    status: str
    reason: str = ""
    diffs: list = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.status == "regression" else 0

    @property
    def regressions(self) -> list:
        return [d for d in self.diffs if d.regressed]


def _incomparable(prev: dict, latest: dict) -> str | None:
    """Why two records cannot be compared (``None`` when they can)."""
    if prev.get("schema") != latest.get("schema"):
        return (f"schema changed {prev.get('schema')!r} -> "
                f"{latest.get('schema')!r}")
    if prev.get("quick") != latest.get("quick"):
        return (f"bench shape changed quick={prev.get('quick')} -> "
                f"quick={latest.get('quick')}")
    env_prev = prev.get("environment")
    env_latest = latest.get("environment")
    if env_prev is None or env_latest is None:
        return "a record has no environment stamp (pre-profiling bench)"
    if env_prev != env_latest:
        changed = sorted(k for k in set(env_prev) | set(env_latest)
                         if env_prev.get(k) != env_latest.get(k))
        return f"environment changed ({', '.join(changed)})"
    return None


def compare_records(prev: dict, latest: dict,
                    watched=DEFAULT_TOLERANCES) -> PerfDiffResult:
    """Compare two trajectory records metric by metric."""
    reason = _incomparable(prev, latest)
    if reason is not None:
        return PerfDiffResult(status="skipped", reason=reason)
    diffs = []
    for w in watched:
        old = _lookup(prev, w.path)
        new = _lookup(latest, w.path)
        if old is None or new is None or old <= 0:
            continue
        if w.higher_is_better:
            regressed = new < old / w.tolerance
        else:
            regressed = new > old * w.tolerance
        diffs.append(MetricDiff(
            name=".".join(w.path), previous=float(old), latest=float(new),
            tolerance=w.tolerance, higher_is_better=w.higher_is_better,
            regressed=regressed))
    if not diffs:
        return PerfDiffResult(status="skipped",
                              reason="no watched metrics in common")
    status = "regression" if any(d.regressed for d in diffs) else "ok"
    return PerfDiffResult(status=status, diffs=diffs)


def perfdiff(path: str | Path, watched=DEFAULT_TOLERANCES) -> PerfDiffResult:
    """Compare the last two trajectory records of a bench file."""
    path = Path(path)
    if not path.exists():
        return PerfDiffResult(status="skipped",
                              reason=f"{path} does not exist")
    try:
        trajectory = json.loads(path.read_text()).get("trajectory", [])
    except ValueError as exc:
        return PerfDiffResult(status="skipped",
                              reason=f"{path} is not valid JSON: {exc}")
    if len(trajectory) < 2:
        return PerfDiffResult(
            status="skipped",
            reason=f"need 2 trajectory records, found {len(trajectory)}")
    return compare_records(trajectory[-2], trajectory[-1], watched)


def render_perfdiff(result: PerfDiffResult) -> str:
    """Human-readable comparison table."""
    lines = [f"repro perfdiff: {result.status}"]
    if result.reason:
        lines.append(f"  ({result.reason})")
    if result.diffs:
        lines.append("")
        lines.append(f"{'metric':<42}{'previous':>12}{'latest':>12}"
                     f"{'ratio':>8}{'band':>8}  verdict")
        for d in result.diffs:
            direction = "higher-better" if d.higher_is_better else "lower-better"
            verdict = "REGRESSED" if d.regressed else "ok"
            lines.append(
                f"{d.name:<42}{d.previous:>12.6g}{d.latest:>12.6g}"
                f"{d.ratio:>8.3f}{d.tolerance:>7.2f}x  {verdict} "
                f"({direction})")
    return "\n".join(lines)
