"""ResultDB — Altis' result-collection facility, reproduced.

The original Altis harness runs each benchmark for ``--passes`` passes
and aggregates every reported metric (kernel time, transfer time,
bandwidth...) into a result database that prints min/max/median/mean/
stddev per metric, with units.  Both the CLI driver and the experiment
benches record through this class, so multi-pass runs and report
formatting behave like the original suite's output.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from ..common.errors import InvalidParameterError

__all__ = ["Result", "ResultDB"]


@dataclass
class Result:
    """All passes of one (benchmark, metric, attributes) combination."""

    test: str
    attribute: str
    unit: str
    values: list[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        if not math.isfinite(value):
            raise InvalidParameterError(
                f"{self.test}/{self.attribute}: non-finite result {value!r}")
        self.values.append(float(value))

    # -- statistics (Altis prints these columns) -------------------------
    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def min(self) -> float:
        return min(self.values)

    @property
    def max(self) -> float:
        return max(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def median(self) -> float:
        s = sorted(self.values)
        n = len(s)
        mid = n // 2
        return s[mid] if n % 2 else 0.5 * (s[mid - 1] + s[mid])

    @property
    def stddev(self) -> float:
        if len(self.values) < 2:
            return 0.0
        m = self.mean
        return math.sqrt(sum((v - m) ** 2 for v in self.values)
                         / (len(self.values) - 1))


class ResultDB:
    """Accumulates results across passes and renders the Altis report."""

    def __init__(self) -> None:
        self._results: dict[tuple[str, str], Result] = {}

    def add_result(self, test: str, attribute: str, unit: str,
                   value: float) -> None:
        key = (test, attribute)
        if key not in self._results:
            self._results[key] = Result(test=test, attribute=attribute,
                                        unit=unit)
        result = self._results[key]
        if result.unit != unit:
            raise InvalidParameterError(
                f"{test}/{attribute}: unit changed from {result.unit!r} "
                f"to {unit!r}")
        result.add(value)

    def results(self) -> list[Result]:
        return list(self._results.values())

    def get(self, test: str, attribute: str) -> Result:
        try:
            return self._results[(test, attribute)]
        except KeyError:
            raise KeyError(f"no result for {test!r}/{attribute!r}") from None

    def __len__(self) -> int:
        return len(self._results)

    # -- reporting --------------------------------------------------------
    def render(self) -> str:
        header = (f"{'test':<22}{'attribute':<22}{'unit':<10}{'passes':>7}"
                  f"{'min':>12}{'median':>12}{'mean':>12}{'max':>12}"
                  f"{'stddev':>12}")
        lines = [header, "-" * len(header)]
        for r in sorted(self._results.values(),
                        key=lambda r: (r.test, r.attribute)):
            lines.append(
                f"{r.test:<22}{r.attribute:<22}{r.unit:<10}{r.count:>7}"
                f"{r.min:>12.5g}{r.median:>12.5g}{r.mean:>12.5g}"
                f"{r.max:>12.5g}{r.stddev:>12.5g}")
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = [
            {"test": r.test, "attribute": r.attribute, "unit": r.unit,
             "values": r.values, "mean": r.mean, "median": r.median,
             "stddev": r.stddev}
            for r in sorted(self._results.values(),
                            key=lambda r: (r.test, r.attribute))
        ]
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ResultDB":
        db = cls()
        for entry in json.loads(text):
            for value in entry["values"]:
                db.add_result(entry["test"], entry["attribute"],
                              entry["unit"], value)
        return db
