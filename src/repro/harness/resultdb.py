"""ResultDB — Altis' result-collection facility, reproduced — plus the
persistent figure-cell cache.

The original Altis harness runs each benchmark for ``--passes`` passes
and aggregates every reported metric (kernel time, transfer time,
bandwidth...) into a result database that prints min/max/median/mean/
stddev per metric, with units.  Both the CLI driver and the experiment
benches record through this class, so multi-pass runs and report
formatting behave like the original suite's output.

:class:`FigureCache` adds the on-disk layer: figure results keyed by a
hash of the cell inputs **and the code fingerprint** (a digest of every
``repro`` source file), so rebuilding Figs. 1/2/4/5 is incremental —
warm rebuilds read JSON instead of re-running the models, and any code
change invalidates every entry automatically.  The JSON codec is
structure-preserving (tuples and tuple-keyed dicts round-trip exactly),
which is what makes the cold-vs-warm bit-identical guarantee testable.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path

from ..common.errors import InvalidParameterError
from ..resilience.faults import cache_read_corrupted as _cache_read_corrupted

__all__ = ["Result", "ResultDB", "FigureCache", "SweepJournal",
           "code_fingerprint"]


@dataclass
class Result:
    """All passes of one (benchmark, metric, attributes) combination."""

    test: str
    attribute: str
    unit: str
    values: list[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        if not math.isfinite(value):
            raise InvalidParameterError(
                f"{self.test}/{self.attribute}: non-finite result {value!r}")
        self.values.append(float(value))

    # -- statistics (Altis prints these columns) -------------------------
    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def min(self) -> float:
        return min(self.values)

    @property
    def max(self) -> float:
        return max(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def median(self) -> float:
        s = sorted(self.values)
        n = len(s)
        mid = n // 2
        return s[mid] if n % 2 else 0.5 * (s[mid - 1] + s[mid])

    @property
    def stddev(self) -> float:
        if len(self.values) < 2:
            return 0.0
        m = self.mean
        return math.sqrt(sum((v - m) ** 2 for v in self.values)
                         / (len(self.values) - 1))


class ResultDB:
    """Accumulates results across passes and renders the Altis report."""

    def __init__(self) -> None:
        self._results: dict[tuple[str, str], Result] = {}

    def add_result(self, test: str, attribute: str, unit: str,
                   value: float) -> None:
        key = (test, attribute)
        if key not in self._results:
            self._results[key] = Result(test=test, attribute=attribute,
                                        unit=unit)
        result = self._results[key]
        if result.unit != unit:
            raise InvalidParameterError(
                f"{test}/{attribute}: unit changed from {result.unit!r} "
                f"to {unit!r}")
        result.add(value)

    def results(self) -> list[Result]:
        return list(self._results.values())

    def get(self, test: str, attribute: str) -> Result:
        try:
            return self._results[(test, attribute)]
        except KeyError:
            raise KeyError(f"no result for {test!r}/{attribute!r}") from None

    def __len__(self) -> int:
        return len(self._results)

    # -- reporting --------------------------------------------------------
    def render(self) -> str:
        header = (f"{'test':<22}{'attribute':<22}{'unit':<10}{'passes':>7}"
                  f"{'min':>12}{'median':>12}{'mean':>12}{'max':>12}"
                  f"{'stddev':>12}")
        lines = [header, "-" * len(header)]
        for r in sorted(self._results.values(),
                        key=lambda r: (r.test, r.attribute)):
            lines.append(
                f"{r.test:<22}{r.attribute:<22}{r.unit:<10}{r.count:>7}"
                f"{r.min:>12.5g}{r.median:>12.5g}{r.mean:>12.5g}"
                f"{r.max:>12.5g}{r.stddev:>12.5g}")
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = [
            {"test": r.test, "attribute": r.attribute, "unit": r.unit,
             "values": r.values, "mean": r.mean, "median": r.median,
             "stddev": r.stddev}
            for r in sorted(self._results.values(),
                            key=lambda r: (r.test, r.attribute))
        ]
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ResultDB":
        db = cls()
        for entry in json.loads(text):
            for value in entry["values"]:
                db.add_result(entry["test"], entry["attribute"],
                              entry["unit"], value)
        return db


# ---------------------------------------------------------------------------
# Persistent figure-cell cache
# ---------------------------------------------------------------------------

@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of every ``repro`` source file (path + bytes).

    Any code change — model constants, kernel bodies, figure assembly —
    produces a new fingerprint and therefore a cold cache.  Stale
    figures can never be served after an edit.
    """
    pkg_root = Path(__file__).resolve().parent.parent  # src/repro
    digest = hashlib.sha256()
    for path in sorted(pkg_root.rglob("*.py")):
        digest.update(str(path.relative_to(pkg_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


_CODEC_SCHEMA = 1


def _encode(value):
    """JSON-encode preserving tuples and non-string dict keys."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {"__tuple__": [_encode(v) for v in value]}
    if isinstance(value, list):
        return [_encode(v) for v in value]
    if isinstance(value, dict):
        return {"__map__": [[_encode(k), _encode(v)] for k, v in value.items()]}
    raise InvalidParameterError(
        f"figure cache cannot encode {type(value).__name__}: {value!r}")


def _decode(value):
    if isinstance(value, dict):
        if "__tuple__" in value:
            return tuple(_decode(v) for v in value["__tuple__"])
        if "__map__" in value:
            return {_decode(k): _decode(v) for k, v in value["__map__"]}
        raise InvalidParameterError(f"corrupt figure-cache payload: {value!r}")
    if isinstance(value, list):
        return [_decode(v) for v in value]
    return value


class FigureCache:
    """Content-addressed on-disk cache for figure results.

    Keys are a sha256 over the canonical JSON of the cell inputs plus a
    schema version and the :func:`code_fingerprint`; values are stored
    through the structure-preserving codec, so a warm read returns a
    value ``==`` to (and structurally indistinguishable from) the cold
    computation.  Caching lives strictly at the figure-assembly layer —
    it can relocate *when* a number is computed, never *what* it is.
    """

    def __init__(self, root: str | os.PathLike | None = None, *,
                 enabled: bool = True, fingerprint: str | None = None):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
        self.root = Path(root)
        self.enabled = enabled
        self._fingerprint = fingerprint
        self.hits = 0
        self.misses = 0

    @property
    def fingerprint(self) -> str:
        if self._fingerprint is None:
            self._fingerprint = code_fingerprint()
        return self._fingerprint

    def key_for(self, **parts) -> str:
        payload = json.dumps(
            {"schema": _CODEC_SCHEMA, "code": self.fingerprint,
             "parts": _encode(dict(sorted(parts.items())))},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()[:32]

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, **parts):
        """Return the cached value for the cell, or ``None`` on a miss.

        An active :class:`~repro.resilience.faults.FaultPlan` may declare
        the read corrupted (``cache:corrupt`` rules); the entry is then
        dropped and the cell recomputes — same degraded path a genuinely
        torn write takes below.
        """
        if not self.enabled:
            return None
        key = self.key_for(**parts)
        path = self._path(key)
        if _cache_read_corrupted(f"figurecache:{key}"):
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        try:
            value = _decode(json.loads(path.read_text())["value"])
        except OSError:
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError):
            # corrupt or half-written entry: drop it and recompute
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, value, **parts) -> None:
        if not self.enabled:
            return
        key = self.key_for(**parts)
        self.root.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({"schema": _CODEC_SCHEMA, "parts": repr(parts),
                              "value": _encode(value)}, sort_keys=True)
        # each writer stages through its own temp file: a shared
        # ``<key>.tmp`` would let one racing writer's os.replace strand
        # the other's (FileNotFoundError on the second replace)
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=f".{key}-",
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> None:
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink()

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "root": str(self.root), "enabled": self.enabled}


# ---------------------------------------------------------------------------
# Append-only sweep journal (checkpoint-resume)
# ---------------------------------------------------------------------------

class SweepJournal:
    """Durable, append-only journal of completed sweep cells (JSONL).

    Each completed cell is appended as one JSON line and fsync'd before
    the sweep moves on, so a killed sweep loses at most its in-flight
    cells; ``suite --resume`` replays the journal and re-executes only
    what is missing.  :meth:`load` tolerates a torn final line — exactly
    what a mid-write kill leaves behind — by discarding undecodable
    lines instead of failing the resume.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)

    def append(self, record: dict) -> None:
        """Durably append one record (write + flush + fsync)."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def load(self) -> list[dict]:
        """All intact records, in append order; torn lines are skipped."""
        try:
            text = self.path.read_text()
        except OSError:
            return []
        records = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn tail of a killed writer
            if isinstance(record, dict):
                records.append(record)
        return records

    def clear(self) -> None:
        self.path.unlink(missing_ok=True)

    def __len__(self) -> int:
        return len(self.load())
