"""Device specifications — the reproduction of the paper's Table 2.

Each :class:`DeviceSpec` carries the published headline numbers (compute
units, peak FP32 throughput, peak memory bandwidth) plus the additional
microarchitectural constants the analytical performance models need
(FP64 ratio, launch overheads, FPGA resource budgets and clock ranges).

FPGA peak attainable FP32 follows the paper's formula::

    Peak FP32 = N_DSP(user logic) x 2 x F_kernel

evaluated at the observed SYCL kernel frequency range (250–450 MHz on
Stratix 10, 250–550 MHz on Agilex), giving the paper's 2.4–4.2 and
2.3–5.0 TFLOP/s brackets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..common.errors import DeviceNotFoundError

__all__ = [
    "DeviceKind",
    "FpgaResources",
    "DeviceSpec",
    "DEVICE_SPECS",
    "get_spec",
    "list_specs",
    "fpga_peak_fp32_tflops",
    "roofline_attainable_flops",
    "roofline_point",
]


class DeviceKind(str, Enum):
    CPU = "cpu"
    GPU = "gpu"
    FPGA = "fpga"


@dataclass(frozen=True)
class FpgaResources:
    """Total device resources; Table 3 header row ("T:" figures)."""

    alms: int
    brams: int
    dsps_total: int
    dsps_user: int  # after subtracting the fixed board interface (Table 2)

    def as_dict(self) -> dict[str, int]:
        return {"alm": self.alms, "bram": self.brams, "dsp": self.dsps_user}


@dataclass(frozen=True)
class DeviceSpec:
    """One row of Table 2, plus model constants.

    Attributes
    ----------
    peak_fp32_tflops:
        For FPGAs this is the *attainable* peak at ``fmax_typical_mhz``.
    kernel_launch_overhead_s:
        Fixed host-side cost of one kernel invocation.  The oneAPI/SYCL
        runtime adds extra context/event management on NVIDIA GPUs
        (paper §3.3, Fig. 1), captured separately in the overhead model.
    """

    name: str
    key: str
    kind: DeviceKind
    process_nm: int
    compute_units: int
    compute_unit_name: str
    peak_fp32_tflops: float
    mem_bw_gbs: float
    fp64_ratio: float = 0.5  # FP64 peak = ratio x FP32 peak
    base_clock_mhz: float = 1000.0
    kernel_launch_overhead_s: float = 5e-6
    # FPGA-only fields
    fpga_resources: FpgaResources | None = None
    fmax_min_mhz: float = 0.0
    fmax_max_mhz: float = 0.0
    fmax_typical_mhz: float = 0.0
    #: how strongly utilization depresses closing frequency (Agilex's
    #: HyperFlex registers retime congested paths, weakening the effect)
    fmax_pressure: float = 0.35
    #: relative logic packed per ALM (Agilex ALMs + HyperFlex registers
    #: absorb ~1.75x the logic of Stratix 10 ALMs — Table 3 fits larger
    #: replication factors into a device with half the ALM count)
    alm_density: float = 1.0
    supports_usm_host: bool = True
    supports_usm_shared: bool = True

    @property
    def is_fpga(self) -> bool:
        return self.kind is DeviceKind.FPGA

    @property
    def peak_fp64_tflops(self) -> float:
        return self.peak_fp32_tflops * self.fp64_ratio

    def peak_flops(self, fp64: bool = False) -> float:
        tf = self.peak_fp64_tflops if fp64 else self.peak_fp32_tflops
        return tf * 1e12

    @property
    def mem_bw(self) -> float:
        """Bytes per second."""
        return self.mem_bw_gbs * 1e9


def fpga_peak_fp32_tflops(dsps_user: int, fmax_mhz: float) -> float:
    """Paper's formula: each DSP does one FMA (2 FLOP) per cycle."""
    return dsps_user * 2.0 * fmax_mhz * 1e6 / 1e12


# ---------------------------------------------------------------------------
# Table 2 (paper) — the catalogue.
# ---------------------------------------------------------------------------

_STRATIX10 = FpgaResources(alms=933_120, brams=11_721, dsps_total=5_760, dsps_user=4_713)
_AGILEX = FpgaResources(alms=487_200, brams=7_110, dsps_total=4_510, dsps_user=4_510)

DEVICE_SPECS: dict[str, DeviceSpec] = {
    spec.key: spec
    for spec in [
        DeviceSpec(
            name="Xeon Gold 6128 CPU",
            key="xeon6128",
            kind=DeviceKind.CPU,
            process_nm=14,
            compute_units=6,
            compute_unit_name="Cores",
            peak_fp32_tflops=1.1,
            mem_bw_gbs=128.0,
            fp64_ratio=0.5,
            base_clock_mhz=3400.0,
            kernel_launch_overhead_s=2e-6,
        ),
        DeviceSpec(
            name="RTX 2080 GPU",
            key="rtx2080",
            kind=DeviceKind.GPU,
            process_nm=12,
            compute_units=46,
            compute_unit_name="SMs",
            peak_fp32_tflops=10.1,
            mem_bw_gbs=448.0,
            fp64_ratio=1.0 / 32.0,  # Turing consumer parts: FP64 = FP32/32
            base_clock_mhz=1710.0,
            kernel_launch_overhead_s=5e-6,
        ),
        DeviceSpec(
            name="A100 GPU",
            key="a100",
            kind=DeviceKind.GPU,
            process_nm=7,
            compute_units=108,
            compute_unit_name="SMs",
            peak_fp32_tflops=19.5,
            mem_bw_gbs=1555.0,
            fp64_ratio=0.5,
            base_clock_mhz=1410.0,
            kernel_launch_overhead_s=4e-6,
        ),
        DeviceSpec(
            name="Max 1100 GPU",
            key="max1100",
            kind=DeviceKind.GPU,
            process_nm=10,
            compute_units=56,
            compute_unit_name="Xe-cores",
            peak_fp32_tflops=22.2,
            mem_bw_gbs=1229.0,
            fp64_ratio=0.5,
            base_clock_mhz=1550.0,
            kernel_launch_overhead_s=6e-6,
        ),
        DeviceSpec(
            name="Stratix 10 FPGA (BittWare 520N)",
            key="stratix10",
            kind=DeviceKind.FPGA,
            process_nm=14,
            compute_units=_STRATIX10.dsps_user,
            compute_unit_name="DSPs (user logic)",
            peak_fp32_tflops=fpga_peak_fp32_tflops(_STRATIX10.dsps_user, 350.0),
            mem_bw_gbs=76.8,
            fp64_ratio=0.25,  # FP64 consumes ~4 DSPs per FMA
            base_clock_mhz=350.0,
            kernel_launch_overhead_s=80e-6,  # OpenCL BSP invocation path
            fpga_resources=_STRATIX10,
            fmax_min_mhz=250.0,
            fmax_max_mhz=450.0,
            fmax_typical_mhz=350.0,
            supports_usm_host=False,  # paper: malloc_host returns nullptr
            supports_usm_shared=False,
        ),
        DeviceSpec(
            name="Agilex FPGA (DE10 Agilex)",
            key="agilex",
            kind=DeviceKind.FPGA,
            process_nm=10,
            compute_units=_AGILEX.dsps_user,
            compute_unit_name="DSPs (user logic)",
            peak_fp32_tflops=fpga_peak_fp32_tflops(_AGILEX.dsps_user, 400.0),
            mem_bw_gbs=85.3,
            fp64_ratio=0.25,
            base_clock_mhz=400.0,
            kernel_launch_overhead_s=80e-6,
            fpga_resources=_AGILEX,
            fmax_min_mhz=250.0,
            fmax_max_mhz=550.0,
            fmax_typical_mhz=400.0,
            fmax_pressure=0.15,
            alm_density=1.75,
            supports_usm_host=False,
            supports_usm_shared=False,
        ),
    ]
}

#: Paper's Table 2 peak brackets, used as a consistency check in tests.
FPGA_PEAK_BRACKETS = {
    "stratix10": (2.4, 4.2),
    "agilex": (2.3, 5.0),
}


def get_spec(key: str) -> DeviceSpec:
    try:
        return DEVICE_SPECS[key]
    except KeyError:
        raise DeviceNotFoundError(
            f"unknown device {key!r}; available: {sorted(DEVICE_SPECS)}"
        ) from None


def list_specs(kind: DeviceKind | None = None) -> list[DeviceSpec]:
    specs = list(DEVICE_SPECS.values())
    if kind is not None:
        specs = [s for s in specs if s.kind is kind]
    return specs


# ---------------------------------------------------------------------------
# Roofline placement (used by the ``repro profile`` report)
# ---------------------------------------------------------------------------

def roofline_attainable_flops(spec: DeviceSpec, arithmetic_intensity: float | None,
                              fp64: bool = False) -> float:
    """Attainable FLOP/s at a given arithmetic intensity (FLOP/byte).

    The classic roofline: ``min(peak compute, AI x peak bandwidth)``.
    ``arithmetic_intensity=None`` means "no global traffic" (infinite
    AI) — the kernel sits under the flat compute roof.
    """
    peak = spec.peak_flops(fp64)
    if arithmetic_intensity is None:
        return peak
    if arithmetic_intensity < 0:
        raise ValueError(f"negative arithmetic intensity {arithmetic_intensity!r}")
    return min(peak, arithmetic_intensity * spec.mem_bw)


def roofline_point(device: str | DeviceSpec, *, flops: float,
                   global_bytes: float, seconds: float,
                   fp64: bool = False) -> dict:
    """Place one measured kernel on the device's roofline.

    Returns a JSON-safe dict: achieved vs attainable vs peak GFLOP/s,
    the fraction of the roofline reached, and whether the attainable
    roof at this intensity is ``"compute"`` or ``"memory"`` bound.
    ``arithmetic_intensity`` is ``None`` (not ``inf``) for kernels with
    zero global traffic.
    """
    spec = get_spec(device) if isinstance(device, str) else device
    if seconds <= 0:
        raise ValueError(f"non-positive kernel time {seconds!r}")
    ai = flops / global_bytes if global_bytes > 0 else None
    attainable = roofline_attainable_flops(spec, ai, fp64)
    peak = spec.peak_flops(fp64)
    achieved = flops / seconds
    bound = "compute" if ai is None or ai * spec.mem_bw >= peak else "memory"
    return {
        "device": spec.key,
        "fp64": fp64,
        "arithmetic_intensity": ai,
        "achieved_gflops": achieved / 1e9,
        "attainable_gflops": attainable / 1e9,
        "peak_gflops": peak / 1e9,
        "fraction_of_roofline": achieved / attainable if attainable > 0 else 0.0,
        "bound": bound,
    }
