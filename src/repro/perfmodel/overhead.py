"""Runtime/non-kernel overhead model (Figure 1's 'Non-Kernel' bars).

The paper decomposes FDTD2D's execution into kernel and non-kernel
regions and finds the migrated SYCL version pays substantially more
non-kernel time than CUDA on the RTX 2080 — profiling showed "extra
underlying CUDA APIs for context/event management" invoked by the
oneAPI plugin layer (§3.3, also observed in the Rodinia-DPCT study).

This module assigns per-runtime constants for the host-side costs:
kernel-launch overhead, per-event management, allocation costs, and
transfer latency/bandwidth.  FPGA targets additionally pay a one-time
device programming cost (bitstream configuration) at first use, which is
excluded from steady-state app timing (Altis times repeat runs), but
reported separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from .spec import DeviceKind, DeviceSpec

__all__ = ["RuntimeKind", "RuntimeOverheads", "overheads_for"]


class RuntimeKind:
    CUDA = "cuda"
    SYCL = "sycl"


@dataclass(frozen=True)
class RuntimeOverheads:
    """Host-side per-operation costs of one runtime on one device."""

    runtime: str
    launch_s: float          # per kernel launch
    event_s: float           # per event record/query
    alloc_s: float           # per device allocation
    transfer_latency_s: float
    transfer_bw: float       # bytes/s host<->device
    #: one-time cost of making the device ready (JIT / FPGA programming)
    startup_s: float
    #: fixed per-run cost inside the timed region (context/event
    #: management on the oneAPI GPU plugin — Fig. 1's non-kernel gap —
    #: and thread-pool orchestration on the CPU back-end)
    per_run_s: float = 0.0

    def transfer_time_s(self, nbytes: float) -> float:
        return self.transfer_latency_s + nbytes / self.transfer_bw

    def launch_time_s(self, launches: int) -> float:
        return launches * self.launch_s


#: (runtime, device-kind) -> constants.  SYCL's plugin layer on NVIDIA
#: GPUs triples the per-launch cost and adds event-management work; the
#: ratio is calibrated against Fig. 1 (CUDA 0.4 ms vs SYCL 2.7 ms of
#: non-kernel time at size 1, which includes ~dozens of launches).
_TABLE: dict[tuple[str, DeviceKind], dict] = {
    (RuntimeKind.CUDA, DeviceKind.GPU): dict(
        launch_s=4e-6, event_s=1e-6, alloc_s=2e-6,
        transfer_latency_s=8e-6, transfer_bw=12e9, startup_s=80e-3,
        per_run_s=0.3e-3,
    ),
    (RuntimeKind.SYCL, DeviceKind.GPU): dict(
        launch_s=13e-6, event_s=6e-6, alloc_s=5e-6,
        transfer_latency_s=12e-6, transfer_bw=11e9, startup_s=250e-3,
        per_run_s=1.6e-3,  # extra CUDA context/event APIs (§3.3, Fig. 1)
    ),
    (RuntimeKind.SYCL, DeviceKind.CPU): dict(
        launch_s=6e-6, event_s=2e-6, alloc_s=1e-6,
        transfer_latency_s=1e-6, transfer_bw=40e9, startup_s=60e-3,
        per_run_s=20e-3,  # TBB arena spin-up + per-run JIT on the CPU BE
    ),
    (RuntimeKind.SYCL, DeviceKind.FPGA): dict(
        launch_s=90e-6, event_s=8e-6, alloc_s=6e-6,
        transfer_latency_s=15e-6, transfer_bw=6.5e9,  # PCIe gen3 x8 boards
        startup_s=2.0,  # bitstream configuration
        per_run_s=1.0e-3,
    ),
}


@lru_cache(maxsize=64)
def overheads_for(runtime: str, spec: DeviceSpec) -> RuntimeOverheads:
    # Called once per figure cell; both argument types and the returned
    # dataclass are frozen, so the memoized instances are safely shared.
    key = (runtime, spec.kind)
    if key not in _TABLE:
        raise KeyError(f"no overhead model for runtime={runtime!r} on {spec.kind}")
    return RuntimeOverheads(runtime=runtime, **_TABLE[key])
