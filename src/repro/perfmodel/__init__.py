"""Analytical performance models: device specs (Table 2), kernel work
profiles, GPU/CPU roofline models, the FPGA pipeline model, runtime
overheads, and implementation-variant traits."""

from .fpga import FpgaKernelTiming, FpgaModel
from .gpu import CpuModel, GpuModel
from .overhead import RuntimeKind, RuntimeOverheads, overheads_for
from .profile import KernelProfile, LaunchPlan
from .spec import (
    DEVICE_SPECS,
    DeviceKind,
    DeviceSpec,
    FpgaResources,
    fpga_peak_fp32_tflops,
    get_spec,
    list_specs,
    roofline_attainable_flops,
    roofline_point,
)
from .timeline import RunDecomposition, model_for, time_launch_plan
from .traits import TRAITS, ImplVariant, Trait, combine

__all__ = [
    "FpgaKernelTiming",
    "FpgaModel",
    "CpuModel",
    "GpuModel",
    "RuntimeKind",
    "RuntimeOverheads",
    "overheads_for",
    "KernelProfile",
    "LaunchPlan",
    "DEVICE_SPECS",
    "DeviceKind",
    "DeviceSpec",
    "FpgaResources",
    "fpga_peak_fp32_tflops",
    "get_spec",
    "list_specs",
    "roofline_attainable_flops",
    "roofline_point",
    "RunDecomposition",
    "model_for",
    "time_launch_plan",
    "TRAITS",
    "ImplVariant",
    "Trait",
    "combine",
]
