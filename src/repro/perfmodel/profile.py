"""Kernel work profiles — the contract between apps and device models.

A :class:`KernelProfile` states how much work one kernel launch performs
(floating-point operations, DRAM traffic, local-memory accesses,
work-item count and per-item loop trips) together with the kernel
characteristics that determine achievable efficiency (branch divergence,
special-function use, FP64).  Applications derive profiles from the same
problem dimensions their functional kernels execute, so the analytical
layer and the functional layer cannot drift apart silently.

Profiles compose: a launch sequence is a list of (profile, invocations).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..common.errors import CalibrationError

__all__ = ["KernelProfile", "LaunchPlan"]


@dataclass(frozen=True)
class KernelProfile:
    """Work and character of a single kernel launch.

    Attributes
    ----------
    flops:
        Total floating-point operations (FMA counts as 2).
    global_bytes:
        DRAM bytes moved (reads + writes), after ideal caching of
        work-group-local reuse.
    local_accesses:
        Shared/local-memory accesses (drives FPGA congestion and the
        paper's §5.2 shared-memory cases).
    work_items:
        Total work-items of the launch (1 for single-task).
    iters_per_item:
        Average per-item innermost trip count (pipeline depth driver).
    branch_divergence:
        Fraction of SIMD lanes wasted to divergent control flow (0..1);
        high for ParticleFilter, which is why §5.3 rewrites it
        single-task.
    special_ops:
        Transcendental/``pow``/``exp``/``sqrt`` operations (slower units).
    compute_efficiency:
        Fraction of device peak the kernel's instruction mix can reach
        with *no* divergence; scaled down by divergence.
    """

    name: str
    flops: float
    global_bytes: float
    work_items: int = 1
    local_accesses: float = 0.0
    iters_per_item: float = 1.0
    branch_divergence: float = 0.0
    special_ops: float = 0.0
    fp64: bool = False
    compute_efficiency: float = 0.35
    #: CPU-back-end-specific efficiency override (SYCL's CPU back-end
    #: vectorizes gather/argmin-style kernels far below nominal peak);
    #: ``None`` -> use ``compute_efficiency``
    cpu_efficiency: float | None = None
    #: CPU-back-end memory-bandwidth efficiency override for kernels with
    #: strided/multi-pass access that defeats the cache hierarchy
    cpu_bw_efficiency: float | None = None

    def __post_init__(self) -> None:
        if self.flops < 0 or self.global_bytes < 0 or self.local_accesses < 0:
            raise CalibrationError(f"{self.name}: negative work counts")
        if not 0.0 <= self.branch_divergence <= 1.0:
            raise CalibrationError(f"{self.name}: divergence must be in [0,1]")
        if not 0.0 < self.compute_efficiency <= 1.0:
            raise CalibrationError(f"{self.name}: efficiency must be in (0,1]")
        if self.work_items < 1:
            raise CalibrationError(f"{self.name}: work_items must be >= 1")

    @property
    def arithmetic_intensity(self) -> float:
        """FLOP per DRAM byte (the roofline x-axis)."""
        if self.global_bytes == 0:
            return float("inf")
        return self.flops / self.global_bytes

    def scaled(self, factor: float, name: str | None = None) -> "KernelProfile":
        """Uniformly scale the work (e.g. per-iteration -> per-run)."""
        return replace(
            self,
            name=name or self.name,
            flops=self.flops * factor,
            global_bytes=self.global_bytes * factor,
            local_accesses=self.local_accesses * factor,
            work_items=max(1, int(self.work_items * factor)),
            special_ops=self.special_ops * factor,
        )

    def with_(self, **kwargs) -> "KernelProfile":
        return replace(self, **kwargs)


@dataclass
class LaunchPlan:
    """A sequence of kernel launches making up one timed application run.

    ``invocations`` multiplies both kernel time and per-launch overhead —
    the distinction that makes the KMeans pipe optimization matter
    (baseline: 4 kernels x N iterations of launches; optimized: 2
    kernels launched once).
    """

    entries: list[tuple[KernelProfile, int]] = field(default_factory=list)
    #: host<->device traffic of the whole run, bytes
    transfer_bytes: float = 0.0

    def add(self, profile: KernelProfile, invocations: int = 1) -> "LaunchPlan":
        if invocations < 0:
            raise CalibrationError("invocations must be non-negative")
        self.entries.append((profile, invocations))
        return self

    def total_invocations(self) -> int:
        return sum(n for _, n in self.entries)

    def total_flops(self) -> float:
        return sum(p.flops * n for p, n in self.entries)

    def total_bytes(self) -> float:
        return sum(p.global_bytes * n for p, n in self.entries)
