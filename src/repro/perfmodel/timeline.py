"""Application-run timing assembly: kernel + non-kernel decomposition.

Combines a :class:`~repro.perfmodel.profile.LaunchPlan` with a device
model, a runtime-overhead model, and an implementation variant to yield
the run decomposition Figure 1 plots: kernel time vs non-kernel time
(launch overheads + transfers + event management).

Also reproduces the paper's two measurement conventions:

* ``measured="kernel"`` — SYCL-event / CUDA-event style, kernel-only;
* ``measured="total"`` — whole-program style ("some Altis applications
  ... time the entire program", §3.3), including overheads.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trace.metrics import registry as _trace_metrics
from ..trace.spans import current_tracer
from .fpga import FpgaModel
from .gpu import CpuModel, GpuModel
from .overhead import RuntimeOverheads
from .profile import LaunchPlan
from .spec import DeviceKind, DeviceSpec
from .traits import ImplVariant

__all__ = ["RunDecomposition", "model_for", "time_launch_plan"]


@dataclass(frozen=True)
class RunDecomposition:
    """Modeled timing of one application run."""

    kernel_s: float
    non_kernel_s: float
    launches: int

    @property
    def total_s(self) -> float:
        return self.kernel_s + self.non_kernel_s


def model_for(spec: DeviceSpec, *, fpga_synthesis=None, fpga_replication: int = 1):
    """Pick the device model class for a spec."""
    if spec.kind is DeviceKind.FPGA:
        return FpgaModel(spec, fpga_synthesis, replication=fpga_replication)
    if spec.kind is DeviceKind.CPU:
        return CpuModel(spec)
    return GpuModel(spec)


def time_launch_plan(plan: LaunchPlan, spec: DeviceSpec,
                     overheads: RuntimeOverheads,
                     variant: ImplVariant | None = None,
                     device_model=None,
                     kernels: dict | None = None,
                     events_per_launch: float = 2.0) -> RunDecomposition:
    """Assemble the run decomposition.

    Parameters
    ----------
    kernels:
        Optional mapping profile-name -> :class:`KernelSpec` so FPGA
        timing can use kernel structure (loops, SIMD attributes).  GPU
        and CPU models use profiles alone.
    events_per_launch:
        Event-management API calls per launch (start/stop records).
    """
    model = device_model or model_for(spec)
    kernel_s = 0.0
    launches = 0
    for profile, n in plan.entries:
        if n == 0:
            continue
        if isinstance(model, FpgaModel):
            entry = (kernels or {}).get(profile.name)
            if entry is not None:
                # entry is a KernelSpec or a (KernelSpec, replication) pair
                if isinstance(entry, tuple):
                    kernel, repl = entry
                else:
                    kernel, repl = entry, None
                t = model.kernel_time_s(kernel, profile, replication=repl)
            else:
                t = model.nd_range_time_s_from_profile(profile)
        else:
            t = model.kernel_time_s(profile)
        if variant is not None:
            t *= variant.kernel_multiplier(profile.name)
        kernel_s += t * n
        launches += n

    non_kernel = overheads.per_run_s
    non_kernel += overheads.launch_time_s(launches)
    non_kernel += launches * events_per_launch * overheads.event_s
    if plan.transfer_bytes:
        non_kernel += overheads.transfer_time_s(plan.transfer_bytes)
    decomp = RunDecomposition(kernel_s=kernel_s, non_kernel_s=non_kernel,
                              launches=launches)
    tracer = current_tracer()
    if tracer is not None:
        # modeled run decomposition on its own clock lane: dur is the
        # *modeled* total, anchored at the wall moment it was assembled,
        # so Fig. 1's numbers sit next to the measured spans.
        tracer.complete(
            f"plan:{spec.key}", "model", tracer.now_us(),
            decomp.total_s * 1e6, tid=f"modeled:{spec.key}",
            kernel_us=decomp.kernel_s * 1e6,
            non_kernel_us=decomp.non_kernel_s * 1e6,
            launches=launches, device=spec.key,
        )
        _trace_metrics.counter("perfmodel.plans_timed").inc()
    return decomp
