"""FPGA kernel-time model: spatial pipelines fed from DDR.

An FPGA kernel is a pipeline clocked at the synthesized Fmax.  The model
computes the cycles each launch occupies and floors the result with the
memory-bandwidth roofline (the paper's recurring finding: Stratix 10
designs become bandwidth-bound at input size 3, §5.4):

**ND-Range kernels** — work-items stream through the pipeline; with
SIMD vectorization V and compute-unit replication R, throughput is
``V x R`` items per cycle (when bandwidth allows)::

    cycles = items * iters_per_item / (V * R) + pipeline_fill

**Single-Task kernels** — loops are pipelined at their initiation
interval; speculated iterations are overhead per *exit* of the loop
(the Mandelbrot example: 4 speculated iterations on an 8192-iteration
inner loop waste up to 8192 x 4 cycles of the outer loop, §5.3)::

    cycles = sum over loops: trips/unroll * II + exits * speculated

Shared-memory stalls: non-bankable local memory (§5.2 case 3, NW)
multiplies cycles by an arbitration stall factor; pipes remove the
global-memory round trips between producer/consumer kernels (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import CalibrationError
from ..fpga.synthesis import SynthesisResult
from ..sycl.kernel import KernelSpec, LoopSpec
from .profile import KernelProfile
from .spec import DeviceSpec

__all__ = ["FpgaKernelTiming", "FpgaModel"]

_PIPELINE_FILL_CYCLES = 300.0
#: arbitration stall multiplier per extra contended port
_ARBITER_STALL = 1.9
#: fraction of DDR bandwidth a well-formed LSU burst achieves
_FPGA_MEM_EFF = 0.82


@dataclass(frozen=True)
class FpgaKernelTiming:
    """Decomposed timing of one kernel launch on the FPGA."""

    cycles: float
    fmax_mhz: float
    pipeline_s: float
    memory_s: float

    @property
    def time_s(self) -> float:
        return max(self.pipeline_s, self.memory_s)

    @property
    def bound(self) -> str:
        return "memory" if self.memory_s > self.pipeline_s else "pipeline"


class FpgaModel:
    """Times kernels against one synthesized design."""

    def __init__(self, spec: DeviceSpec, synthesis: SynthesisResult | None = None,
                 *, replication: int = 1):
        if spec.fpga_resources is None:
            raise CalibrationError(f"{spec.key!r} is not an FPGA device")
        self.spec = spec
        self.synthesis = synthesis
        self.replication = replication

    @property
    def fmax_hz(self) -> float:
        mhz = self.synthesis.fmax_mhz if self.synthesis else self.spec.fmax_typical_mhz
        return mhz * 1e6

    # -- helpers -----------------------------------------------------------
    def _stall_factor(self, kernel: KernelSpec) -> float:
        """Shared-memory arbitration stalls (§5.2 case 3)."""
        factor = 1.0
        for mem in kernel.feature("local_memories", []):
            bankable = mem.get("bankable", True) if isinstance(mem, dict) else mem.bankable
            ports = mem.get("ports", 1) if isinstance(mem, dict) else mem.ports
            if not bankable and ports > 1:
                factor *= 1.0 + (_ARBITER_STALL - 1.0) * min(ports - 1, 4) / 4.0
        return factor

    def _memory_time(self, profile: KernelProfile) -> float:
        return profile.global_bytes / (self.spec.mem_bw * _FPGA_MEM_EFF)

    # -- ND-range ------------------------------------------------------------
    def nd_range_time_s(self, kernel: KernelSpec, profile: KernelProfile) -> FpgaKernelTiming:
        simd = kernel.attributes.num_simd_work_items
        throughput = simd * self.replication
        items = profile.work_items * max(profile.iters_per_item, 1.0)
        cycles = items / throughput + _PIPELINE_FILL_CYCLES
        cycles *= self._stall_factor(kernel)
        if kernel.feature("variable_trip_loop", False):
            # a data-dependent inner loop inside an ND-range item cannot
            # pipeline across items: the exit condition serializes (II~2)
            # and divergent trip counts leave bubbles (§5.3 motivates the
            # single-task rewrite precisely for such kernels)
            cycles *= 2.0 * (1.0 + profile.branch_divergence)
        if kernel.uses_barrier:
            # groups drain the pipeline at each barrier phase
            wg = kernel.attributes.reqd_work_group_size
            wg_size = 1
            for d in wg or (64,):
                wg_size *= d
            n_groups = max(1.0, profile.work_items / wg_size)
            cycles += n_groups * _PIPELINE_FILL_CYCLES / self.replication
        pipeline_s = cycles / self.fmax_hz
        return FpgaKernelTiming(
            cycles=cycles,
            fmax_mhz=self.fmax_hz / 1e6,
            pipeline_s=pipeline_s,
            memory_s=self._memory_time(profile),
        )

    # -- single-task ------------------------------------------------------------
    def single_task_time_s(self, kernel: KernelSpec, profile: KernelProfile,
                           loops: list[LoopSpec] | None = None) -> FpgaKernelTiming:
        loops = loops if loops is not None else kernel.loops
        if not loops:
            # treat the profile's items*iters as one flat II=1 loop
            cycles = profile.work_items * max(profile.iters_per_item, 1.0) / self.replication
            cycles += _PIPELINE_FILL_CYCLES
        else:
            by_name = {lp.name: lp for lp in loops}

            def exits_of(lp: LoopSpec) -> float:
                """Times this loop is *entered*: the product of effective
                trip counts of every ancestor loop."""
                total = 1.0
                cur = lp
                seen = set()
                while cur.nested_in is not None and cur.nested_in not in seen:
                    seen.add(cur.nested_in)
                    outer = by_name.get(cur.nested_in)
                    if outer is None:
                        break
                    total *= float(outer.trip_count) / max(1, outer.unroll)
                    cur = outer
                return total

            cycles = _PIPELINE_FILL_CYCLES
            for lp in loops:
                exits = exits_of(lp)
                eff_trips = float(lp.trip_count) / max(1, lp.unroll)
                # pipelined body at its initiation interval, plus the
                # speculation overhead paid once per loop exit (§5.3)
                cycles += exits * (eff_trips * lp.initiation_interval
                                   + lp.speculated_iterations)
            cycles /= self.replication
        cycles *= self._stall_factor(kernel)
        pipeline_s = cycles / self.fmax_hz
        return FpgaKernelTiming(
            cycles=cycles,
            fmax_mhz=self.fmax_hz / 1e6,
            pipeline_s=pipeline_s,
            memory_s=self._memory_time(profile),
        )

    def nd_range_time_s_from_profile(self, profile: KernelProfile) -> float:
        """Time a launch without kernel structure: flat ND-range pipeline
        at SIMD=1 with this model's replication."""
        items = profile.work_items * max(profile.iters_per_item, 1.0)
        cycles = items / self.replication + _PIPELINE_FILL_CYCLES
        return max(cycles / self.fmax_hz, self._memory_time(profile))

    # -- unified entry point ------------------------------------------------
    def kernel_time_s(self, kernel: KernelSpec, profile: KernelProfile,
                      replication: int | None = None) -> float:
        """Time one launch; ``replication`` overrides the model-wide
        compute-unit count for this kernel (designs replicate different
        kernels by different factors, e.g. Where's 2x scan vs 20x
        mark/scatter, §5.5)."""
        if replication is not None and replication != self.replication:
            scoped = FpgaModel(self.spec, self.synthesis, replication=replication)
            return scoped.kernel_time_s(kernel, profile)
        if kernel.is_single_task:
            return self.single_task_time_s(kernel, profile).time_s
        return self.nd_range_time_s(kernel, profile).time_s
