"""Implementation traits: compiler/runtime mechanisms that separate the
CUDA, baseline-SYCL, and optimized-SYCL versions of a kernel.

Figure 2's baseline-vs-optimized gaps come from specific, named
mechanisms in the paper (§3.3), not from vague "tuning".  Each mechanism
is modeled as a multiplicative kernel-time penalty attached to an
implementation variant:

===========================  ================================================
trait                        paper mechanism
===========================  ================================================
``harmful_unroll``           NVCC benefits from ``#pragma unroll``; Clang's
                             SYCL path regresses up to 3x on CFD's main loop
``missing_inline``           Clang inlines cautiously: NW's kernel function
                             stays un-inlined until
                             ``-finlining-threshold=10000``; ~2x slowdown
``pow_not_strength_reduced`` the *CUDA* version calls ``pow(a,2)``; DPCT's
                             ``a*a`` rewrite makes SYCL up to 6x faster
                             (penalty belongs to the CUDA side of PF Float)
``onedpl_scan``              oneDPL's prefix-sum is 1.5x slower than CUDA's
``virtual_dispatch``         Raytracing's CUDA version dispatches materials
                             virtually; SYCL removes this in the refactor
``rng_philox_vs_xorwow``     RNG swap changes Raytracing's per-sample cost
``barrier_global_scope``     un-narrowed barrier fences (baseline SYCL)
===========================  ================================================

A variant is a set of trait multipliers; variant factories below encode
the combinations used throughout the harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Trait", "TRAITS", "ImplVariant", "combine"]


@dataclass(frozen=True)
class Trait:
    """One named mechanism with its kernel-time multiplier (>1 = slower)."""

    name: str
    kernel_multiplier: float
    reference: str


TRAITS: dict[str, Trait] = {
    t.name: t
    for t in [
        Trait("harmful_unroll", 3.0, "paper §3.3: CFD 3x worse with unrolling"),
        Trait("missing_inline", 2.0, "paper §3.3: NW 2x faster with inline threshold"),
        Trait("pow_not_strength_reduced", 6.0, "paper §3.3: pow(a,2) vs a*a, PF Float"),
        Trait("onedpl_scan", 1.5, "paper §3.3: oneDPL prefix-sum 50% slower"),
        Trait("virtual_dispatch", 1.6, "paper §3.2.2/§3.3: Raytracing virtual fns"),
        Trait("rng_philox_vs_xorwow", 0.55, "paper §3.3: oneMKL philox cheaper/sample"),
        Trait("barrier_global_scope", 1.12, "paper §3.2.1: un-narrowed fences"),
        Trait("missed_vectorization", 1.35, "baseline SYCL pre-tuning losses"),
        Trait("nvcc_fp64_spill", 1.5, "Fig. 2: CFD FP64 SYCL 1.5x faster than CUDA"),
        Trait("virtual_dispatch_deep", 12.0,
              "Fig. 2 Raytracing: per-bounce virtual dispatch blocks "
              "inlining/register allocation in the CUDA original"),
    ]
}


@dataclass(frozen=True)
class ImplVariant:
    """An implementation variant: name + the traits afflicting it.

    ``kernel_multiplier(kernel_name)`` gives the combined slow-down for a
    kernel; per-kernel scoping lets a variant afflict only e.g. the CFD
    main loop.
    """

    name: str
    runtime: str  # "cuda" | "sycl"
    traits: tuple[str, ...] = ()
    #: kernel-name -> extra trait names applying only to that kernel
    per_kernel: dict = field(default_factory=dict)

    def kernel_multiplier(self, kernel_name: str | None = None) -> float:
        names = list(self.traits)
        if kernel_name is not None:
            names += list(self.per_kernel.get(kernel_name, ()))
        mult = 1.0
        for n in names:
            mult *= TRAITS[n].kernel_multiplier
        return mult


def combine(*multipliers: float) -> float:
    out = 1.0
    for m in multipliers:
        out *= m
    return out
