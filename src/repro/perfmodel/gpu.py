"""GPU (and CPU) kernel-time models: roofline with character penalties.

The model follows the classic roofline: a kernel is limited either by
compute throughput or by memory bandwidth::

    t_kernel = max( flops / (peak * eff_compute),
                    bytes / (bw   * eff_memory),
                    t_floor )

with efficiencies derived from the kernel's character:

* divergence wastes SIMD lanes multiplicatively;
* special-function ops run on the SFU/slow path at a fixed flop-rate
  discount;
* tiny launches cannot fill the device — a latency floor (plus an
  occupancy ramp for launches smaller than the device's thread
  capacity).

The CPU model is the same shape with a lower parallel ceiling — a
6-core Xeon running a SYCL CPU back-end reaches a modest fraction of
nominal peak on these irregular kernels.
"""

from __future__ import annotations

from ..perfmodel.profile import KernelProfile
from .spec import DeviceKind, DeviceSpec

__all__ = ["GpuModel", "CpuModel"]

#: flop-rate discount applied to special-function operations
_SPECIAL_OP_COST = 4.0
#: the minimum time any kernel occupies the device
_GPU_KERNEL_FLOOR_S = 2e-6
#: parallel-region fork/join + enqueue cost of the SYCL CPU back-end
_CPU_KERNEL_FLOOR_S = 120e-6


class GpuModel:
    """Roofline timing for one GPU device."""

    #: threads needed to saturate one SM / Xe-core
    THREADS_PER_CU = 1024
    #: memory-system efficiency for streaming access
    MEM_EFF = 0.80

    def __init__(self, spec: DeviceSpec):
        if spec.kind is DeviceKind.FPGA:
            raise ValueError("use FpgaModel for FPGA devices")
        self.spec = spec

    # -- components --------------------------------------------------------
    def occupancy(self, work_items: int) -> float:
        """Fraction of the device a launch can fill."""
        capacity = self.spec.compute_units * self.THREADS_PER_CU
        return min(1.0, work_items / capacity)

    def compute_efficiency(self, p: KernelProfile) -> float:
        eff = p.compute_efficiency
        eff *= 1.0 - 0.85 * p.branch_divergence
        return max(eff, 0.005)

    def effective_flops(self, p: KernelProfile) -> float:
        """FLOP count with special ops weighted by their slow-path cost."""
        return p.flops + p.special_ops * (_SPECIAL_OP_COST - 1.0)

    # -- timing -------------------------------------------------------------
    def kernel_time_s(self, p: KernelProfile) -> float:
        peak = self.spec.peak_flops(p.fp64)
        occ = self.occupancy(p.work_items)
        eff = self.compute_efficiency(p) * max(occ, 0.02)
        t_compute = self.effective_flops(p) / (peak * eff)
        t_memory = p.global_bytes / (self.spec.mem_bw * self.MEM_EFF * max(occ, 0.1))
        return max(t_compute, t_memory, _GPU_KERNEL_FLOOR_S)

    def bound(self, p: KernelProfile) -> str:
        """Which roofline wall binds: 'compute' or 'memory'."""
        peak = self.spec.peak_flops(p.fp64)
        occ = self.occupancy(p.work_items)
        eff = self.compute_efficiency(p) * max(occ, 0.02)
        t_compute = self.effective_flops(p) / (peak * eff)
        t_memory = p.global_bytes / (self.spec.mem_bw * self.MEM_EFF * max(occ, 0.1))
        return "compute" if t_compute >= t_memory else "memory"


class CpuModel(GpuModel):
    """Xeon CPU under the SYCL CPU back-end.

    Differences from the GPU shape: far fewer hardware threads, a
    higher achievable fraction of bandwidth (caches), and a lower
    achievable fraction of peak FLOP/s on branchy SIMT-style kernels
    (vectorization is imperfect).
    """

    THREADS_PER_CU = 2  # SMT-2 cores
    MEM_EFF = 0.70
    #: SIMT kernels reach a limited share of nominal AVX-512 peak
    CPU_PEAK_SHARE = 0.45

    def occupancy(self, work_items: int) -> float:
        capacity = self.spec.compute_units * self.THREADS_PER_CU
        # a CPU saturates with very few work-items
        return min(1.0, work_items / max(capacity, 1))

    def compute_efficiency(self, p: KernelProfile) -> float:
        base = p.cpu_efficiency if p.cpu_efficiency is not None else p.compute_efficiency
        eff = base * self.CPU_PEAK_SHARE
        # divergence hurts less than on GPUs (scalar fallback exists)
        eff *= 1.0 - 0.5 * p.branch_divergence
        return max(eff, 0.002)

    def kernel_time_s(self, p: KernelProfile) -> float:
        peak = self.spec.peak_flops(p.fp64)
        eff = self.compute_efficiency(p)
        t_compute = self.effective_flops(p) / (peak * eff)
        bw_eff = p.cpu_bw_efficiency if p.cpu_bw_efficiency is not None else self.MEM_EFF
        t_memory = p.global_bytes / (self.spec.mem_bw * bw_eff)
        return max(t_compute, t_memory, _CPU_KERNEL_FLOOR_S)
