"""The async job queue: suite sweeps as first-class, resumable jobs.

A job wraps one :func:`repro.harness.runner.run_suite_functional` sweep
with everything a long-running service needs around it:

* **deterministic identity** — :func:`job_id` is a content hash of the
  tenant plus the full :class:`JobSpec`, so resubmitting the same work
  is idempotent (you get the same job back, not a duplicate run), and
  :func:`sweep_id` hashes only the fields that define *which cells run*
  (tenant, device, variant, mode, configs, tag).  The journal is keyed
  by the sweep id, which is what makes recovery work: a job resubmitted
  after a crash — even with different retry/fault knobs — reattaches to
  the same journal and re-executes only the unfinished cells.
* **states** — ``queued → running → done | degraded | failed``
  (:data:`STATES`); ``degraded`` means the sweep completed but some
  cells exhausted recovery and were recorded as
  :class:`~repro.resilience.FailedCell` rows.
* **checkpoint-resume** — every job journals through the fsync'd
  :class:`~repro.harness.resultdb.SweepJournal` in its tenant's
  namespace and always runs with ``resume=True``; a killed server loses
  at most its in-flight cells.
* **progress events** — an append-only per-job event log (state
  transitions, one event per executed cell with attempts and injected
  faults, resumed-cell accounting, and a final metrics summary) that the
  HTTP layer streams to clients as NDJSON.

The queue itself is a fixed pool of daemon worker threads over a
``queue.Queue`` — jobs from any number of tenants interleave, and the
``resilience.*`` retry/deadline/degrade machinery doubles as the
service's SLO controls (see docs/service.md).
"""

from __future__ import annotations

import hashlib
import json
import queue as _queue
import threading
import time
from dataclasses import dataclass, field, fields

from ..altis.base import Variant
from ..common.errors import (CellExecutionError, InvalidParameterError,
                             ReproError)
from ..harness.reporting import render_suite_report
from ..harness.runner import (_DEFAULT_SCALES, journal_record_trusted,
                              run_suite_functional)
from ..resilience import FailedCell, FaultPlan, RetryPolicy
from ..trace.metrics import registry as _metrics
from .tenants import Tenant, TenantRegistry

__all__ = ["STATES", "TERMINAL_STATES", "JobSpec", "Job", "JobQueue",
           "job_id", "sweep_id"]

#: job lifecycle states, in order of progress
STATES = ("queued", "running", "done", "degraded", "failed")

#: states a job never leaves
TERMINAL_STATES = frozenset({"done", "degraded", "failed"})

_EXECUTOR_MODES = (None, "auto", "vector", "group", "item", "compiled")


@dataclass(frozen=True)
class JobSpec:
    """Everything that defines one sweep job (JSON-serializable).

    ``configs=None`` sweeps the full suite; a tuple restricts it.
    ``tag`` is a client-chosen namespace component folded into the job
    and sweep identity — two otherwise-identical submissions with
    different tags are distinct jobs with distinct journals.

    >>> spec = JobSpec(configs=("NW", "SRAD"), retries=2)
    >>> spec.cell_count()
    2
    >>> JobSpec().cell_count() == len(JobSpec.suite_configs())
    True
    """

    device: str = "rtx2080"
    variant: str = "sycl_opt"
    mode: str | None = None
    configs: tuple | None = None
    workers: int | None = None
    retries: int = 0
    cell_timeout: float | None = None
    inject_faults: str | None = None
    fault_seed: int = 0
    on_error: str = "degrade"
    #: benchmark config to profile after the sweep (artifacts land in
    #: the tenant's artifact dir; ``None`` skips profiling)
    profile: str | None = None
    tag: str = ""

    def __post_init__(self):
        try:
            Variant(self.variant)
        except ValueError:
            raise InvalidParameterError(
                f"unknown variant {self.variant!r}; expected one of "
                f"{[v.value for v in Variant]}") from None
        if self.mode not in _EXECUTOR_MODES:
            raise InvalidParameterError(
                f"unknown executor mode {self.mode!r}; "
                f"expected one of {_EXECUTOR_MODES[1:]}")
        if self.mode == "auto":  # canonical form, as the suite CLI does
            object.__setattr__(self, "mode", None)
        if self.on_error not in ("abort", "degrade"):
            raise InvalidParameterError(
                f"on_error must be 'abort' or 'degrade', "
                f"got {self.on_error!r}")
        if self.retries < 0:
            raise InvalidParameterError(
                f"retries must be >= 0, got {self.retries!r}")
        if self.configs is not None:
            object.__setattr__(self, "configs", tuple(self.configs))
            unknown = [c for c in self.configs if c not in _DEFAULT_SCALES]
            if unknown:
                raise InvalidParameterError(
                    f"unknown suite config(s) {unknown!r}; "
                    f"expected a subset of {list(_DEFAULT_SCALES)}")
        if self.inject_faults:
            FaultPlan.parse(self.inject_faults)  # validate at admission
        if self.profile is not None and self.profile not in _DEFAULT_SCALES:
            raise InvalidParameterError(
                f"unknown profile config {self.profile!r}")

    @staticmethod
    def suite_configs() -> tuple:
        """The full suite, in sweep order."""
        return tuple(_DEFAULT_SCALES)

    def resolved_configs(self) -> tuple:
        if self.configs is None:
            return self.suite_configs()
        # suite order, exactly as run_suite_functional schedules them
        wanted = set(self.configs)
        return tuple(c for c in _DEFAULT_SCALES if c in wanted)

    def cell_count(self) -> int:
        return len(self.resolved_configs())

    def to_dict(self) -> dict:
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise InvalidParameterError(
                f"unknown job-spec field(s) {sorted(unknown)!r}; "
                f"expected a subset of {sorted(known)}")
        kwargs = dict(payload)
        if kwargs.get("configs") is not None:
            kwargs["configs"] = tuple(kwargs["configs"])
        return cls(**kwargs)


def _digest(*parts) -> str:
    payload = json.dumps(parts, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def job_id(tenant: str, spec: JobSpec) -> str:
    """Deterministic job identity: tenant + the full spec.

    >>> a = job_id("acme", JobSpec(configs=("NW",)))
    >>> a == job_id("acme", JobSpec(configs=("NW",)))
    True
    >>> a == job_id("acme", JobSpec(configs=("NW",), retries=1))
    False
    """
    return "j-" + _digest(tenant, spec.to_dict())


def sweep_id(tenant: str, spec: JobSpec) -> str:
    """Deterministic *sweep* identity: only the fields that define which
    cells run.  Jobs that differ only in recovery knobs (retries,
    deadlines, fault plans) share a sweep id — and therefore a journal —
    which is what lets a resubmission resume a crashed sweep.

    >>> a = sweep_id("acme", JobSpec(configs=("NW",)))
    >>> a == sweep_id("acme", JobSpec(configs=("NW",), retries=5))
    True
    >>> a == sweep_id("acme", JobSpec(configs=("NW",), tag="other"))
    False
    """
    return "s-" + _digest(tenant, spec.device, spec.variant,
                          spec.mode or "auto",
                          list(spec.resolved_configs()), spec.tag)


class Job:
    """One submitted sweep: spec, state, event log, and (on completion)
    the rendered report — byte-identical to ``repro suite`` output."""

    def __init__(self, id: str, tenant: str, spec: JobSpec, sweep: str):
        self.id = id
        self.tenant = tenant
        self.spec = spec
        self.sweep = sweep
        self.state = "queued"
        self.error: str | None = None
        self.report: str | None = None
        self.artifacts: dict[str, str] = {}
        self.cells_total = spec.cell_count()
        self.cells_done = 0
        self.cells_failed = 0
        self.cells_resumed = 0
        self.retries = 0
        self.faults_injected = 0
        self.submitted_at = time.time()
        self.finished_at: float | None = None
        self._t0 = time.monotonic()
        self._events: list[dict] = []
        self._lock = threading.Lock()
        self._terminal = threading.Event()
        self.emit("state", state="queued")

    # -- events -----------------------------------------------------------
    def emit(self, type: str, **payload) -> dict:
        """Append one event to the job's log (thread-safe, monotonic
        sequence numbers and elapsed-ms stamps)."""
        with self._lock:
            event = {"seq": len(self._events), "type": type,
                     "t_ms": round((time.monotonic() - self._t0) * 1e3, 3),
                     "job": self.id}
            event.update(payload)
            self._events.append(event)
            return event

    def events(self, since: int = 0) -> list[dict]:
        """Events with ``seq >= since`` (the streaming cursor)."""
        with self._lock:
            return list(self._events[since:])

    # -- state ------------------------------------------------------------
    def transition(self, state: str, **payload) -> None:
        if state not in STATES:
            raise InvalidParameterError(f"unknown job state {state!r}")
        self.state = state
        self.emit("state", state=state, **payload)
        if state in TERMINAL_STATES:
            self.finished_at = time.time()
            self._terminal.set()

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._terminal.wait(timeout)

    def snapshot(self) -> dict:
        """The job's status document (the ``GET /v1/jobs/<id>`` payload)."""
        with self._lock:
            n_events = len(self._events)
        return {
            "id": self.id,
            "tenant": self.tenant,
            "sweep": self.sweep,
            "state": self.state,
            "spec": self.spec.to_dict(),
            "cells": {
                "total": self.cells_total,
                "done": self.cells_done,
                "resumed": self.cells_resumed,
                "failed": self.cells_failed,
            },
            "retries": self.retries,
            "faults_injected": self.faults_injected,
            "error": self.error,
            "events": n_events,
            "artifacts": sorted(self.artifacts),
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
        }


class JobQueue:
    """Fixed worker pool executing jobs from every tenant, in FIFO order.

    ``workers`` daemon threads pull from one shared queue; each job's
    sweep may itself fan out over ``spec.workers`` pool workers, so the
    two levels compose (service-level concurrency x sweep-level
    parallelism).  ``kill()`` abandons the workers without draining —
    the crash path; journals on disk are the only state that survives,
    exactly like a real server loss.
    """

    def __init__(self, tenants: TenantRegistry, *, workers: int = 4):
        if workers < 1:
            raise InvalidParameterError(
                f"workers must be >= 1, got {workers!r}")
        self.tenants = tenants
        self._jobs: dict[str, Job] = {}
        self._code_fingerprint: str | None = None
        self._queue: _queue.Queue = _queue.Queue()
        self._lock = threading.Lock()
        self._killed = threading.Event()
        self._workers = [
            threading.Thread(target=self._worker, name=f"sweep-worker-{i}",
                             daemon=True)
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- submission -------------------------------------------------------
    def submit(self, tenant_name: str, spec: JobSpec) -> Job:
        """Admit one job (idempotent by job id).

        Resubmitting a spec whose job is queued, running, or already
        finished returns the existing job untouched.  Resubmitting a
        spec whose previous job **failed** requeues it — and because the
        journal is keyed by sweep id, the rerun resumes from the cells
        the failed attempt completed.  Quota charging is resume-aware:
        only the cells the journal is still missing are charged.
        """
        tenant = self.tenants.get(tenant_name)
        jid = job_id(tenant_name, spec)
        with self._lock:
            existing = self._jobs.get(jid)
            if existing is not None and existing.state != "failed":
                return existing
        sid = sweep_id(tenant_name, spec)
        # journal read (disk I/O) stays outside the lock; the
        # existing-check is redone under it before the charge lands
        charge = max(0, spec.cell_count()
                     - self._journaled_cells(tenant, sid, spec))
        with self._lock:
            # re-check: a concurrent duplicate (loadgen's
            # retry-on-connection-fault shape) may have inserted between
            # the fast-path check and here.  Admit + insert under one
            # lock, so exactly one submission charges the tenant and
            # takes the active-job slot.
            existing = self._jobs.get(jid)
            if existing is not None and existing.state != "failed":
                return existing
            try:
                tenant.admit(charge)
            except ReproError:
                _metrics.counter("service.jobs_rejected").inc()
                raise
            job = Job(jid, tenant_name, spec, sid)
            self._jobs[jid] = job
        _metrics.counter("service.jobs_submitted").inc()
        self._queue.put(jid)
        return job

    def _journaled_cells(self, tenant: Tenant, sid: str,
                         spec: JobSpec) -> int:
        """Completed cells already in the sweep's journal (resume credit).

        Applies the exact validity predicate the sweep's resume filter
        uses (:func:`~repro.harness.runner.journal_record_trusted`):
        records with a stale code fingerprint or drifted scale will be
        re-executed, so they earn no credit.
        """
        from ..harness.resultdb import SweepJournal

        journal = SweepJournal(tenant.journal_path(sid))
        wanted = set(spec.resolved_configs())
        fingerprint = self._fingerprint()
        return len({r.get("config") for r in journal.load()
                    if journal_record_trusted(
                        r, device_key=spec.device,
                        variant=Variant(spec.variant), mode=spec.mode,
                        wanted=wanted, fingerprint=fingerprint)})

    def _fingerprint(self) -> str:
        """The source-tree fingerprint, computed once per queue — it is
        launch-invariant, and the hot submit path must not re-hash the
        tree per request (idempotent, so a benign double-compute race
        is fine)."""
        if self._code_fingerprint is None:
            from ..harness.resultdb import code_fingerprint

            self._code_fingerprint = code_fingerprint()
        return self._code_fingerprint

    # -- lookup -----------------------------------------------------------
    def get(self, jid: str, tenant: str | None = None) -> Job | None:
        """The job, or ``None`` — including when ``tenant`` is given and
        does not own it (cross-tenant ids are indistinguishable from
        unknown ids, so ids never leak across namespaces)."""
        with self._lock:
            job = self._jobs.get(jid)
        if job is None:
            return None
        if tenant is not None and job.tenant != tenant:
            return None
        return job

    def jobs(self, tenant: str | None = None) -> list[Job]:
        with self._lock:
            jobs = list(self._jobs.values())
        if tenant is not None:
            jobs = [j for j in jobs if j.tenant == tenant]
        return sorted(jobs, key=lambda j: j.submitted_at)

    # -- lifecycle --------------------------------------------------------
    def drain(self, timeout: float | None = None) -> bool:
        """Wait until every admitted job is terminal."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for job in self.jobs():
            remaining = (None if deadline is None
                         else max(0.0, deadline - time.monotonic()))
            if not job.wait(remaining):
                return False
        return True

    def kill(self) -> None:
        """Abandon the queue without draining — the simulated crash.

        Workers stop picking up jobs; queued and in-flight jobs are left
        in their current state.  Durable state (fsync'd journals) is all
        a successor queue needs to resume the unfinished sweeps.
        """
        self._killed.set()
        for _ in self._workers:
            self._queue.put(None)  # wake blocked workers so they exit

    def stop(self, timeout: float | None = 30.0) -> bool:
        """Graceful shutdown: drain admitted jobs, then stop workers."""
        drained = self.drain(timeout)
        self.kill()
        return drained

    # -- execution --------------------------------------------------------
    def _worker(self) -> None:
        while not self._killed.is_set():
            jid = self._queue.get()
            if jid is None or self._killed.is_set():
                return
            with self._lock:
                job = self._jobs.get(jid)
            if job is None or job.state != "queued":
                continue
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        tenant = self.tenants.get(job.tenant)
        job.transition("running")
        _metrics.gauge("service.jobs_running").set(
            sum(1 for j in self.jobs() if j.state == "running"))
        started = time.monotonic()
        try:
            results = self._run_sweep(job, tenant)
            self._finish(job, tenant, results)
        except Exception as exc:
            job.error = f"{type(exc).__name__}: {exc}"
            detail = {}
            if isinstance(exc, CellExecutionError):
                detail = {"cell": exc.key, "attempts": exc.attempts}
            job.transition("failed", error=job.error, **detail)
            _metrics.counter("service.jobs_failed").inc()
        finally:
            tenant.release()
            _metrics.histogram("service.job_duration_s").observe(
                time.monotonic() - started)

    def _run_sweep(self, job: Job, tenant: Tenant) -> list:
        spec = job.spec
        retry = (RetryPolicy(max_attempts=spec.retries + 1)
                 if spec.retries > 0 else None)
        plan = (FaultPlan.parse(spec.inject_faults, seed=spec.fault_seed)
                if spec.inject_faults else None)
        configs = spec.resolved_configs()
        executed = set()

        def progress(outcome) -> None:
            job.cells_done += 1 if outcome.ok else 0
            job.cells_failed += 0 if outcome.ok else 1
            job.retries += max(0, outcome.attempts - 1)
            job.faults_injected += outcome.injected
            executed.add(outcome.key)
            job.emit("cell", key=outcome.key, ok=outcome.ok,
                     attempts=outcome.attempts, injected=outcome.injected,
                     error=outcome.error_kind)

        results = run_suite_functional(
            spec.device, Variant(spec.variant), workers=spec.workers,
            mode=spec.mode, configs=configs, retry=retry,
            cell_timeout=spec.cell_timeout, fault_plan=plan,
            degrade=spec.on_error == "degrade",
            journal=tenant.journal_path(job.sweep), resume=True,
            progress=progress)
        resumed = [c for c in configs if c not in executed]
        job.cells_resumed = len(resumed)
        job.cells_done += len(resumed)
        if resumed:
            job.emit("resumed", cells=resumed)
        return results

    def _finish(self, job: Job, tenant: Tenant, results: list) -> None:
        job.report = render_suite_report(results) + "\n"
        degraded = sum(1 for r in results if isinstance(r, FailedCell))
        unverified = sum(1 for r in results
                         if not isinstance(r, FailedCell) and not r.verified)
        if job.spec.profile is not None:
            self._write_profile(job, tenant)
        job.emit("metrics", cells_done=job.cells_done,
                 cells_resumed=job.cells_resumed, cells_failed=degraded,
                 retries=job.retries, faults_injected=job.faults_injected,
                 verification_failures=unverified)
        if unverified:
            job.error = f"{unverified} cell(s) failed golden verification"
            job.transition("failed", error=job.error)
            _metrics.counter("service.jobs_failed").inc()
        elif degraded:
            job.transition("degraded", failed_cells=degraded)
            _metrics.counter("service.jobs_degraded").inc()
        else:
            job.transition("done")
            _metrics.counter("service.jobs_completed").inc()

    def _write_profile(self, job: Job, tenant: Tenant) -> None:
        """Post-sweep profiling: the Fig. 1-style per-kernel report and
        flamegraph for ``spec.profile``, into the tenant's artifact dir."""
        from ..trace.profile import profile_functional, write_profile

        run = profile_functional(job.spec.profile,
                                 device_key=job.spec.device,
                                 variant=job.spec.variant,
                                 mode=job.spec.mode)
        out = tenant.artifact_dir(job.id)
        paths = write_profile(out, run)
        job.artifacts = {name: str(path) for name, path in paths.items()}
        job.emit("artifacts", names=sorted(job.artifacts))
