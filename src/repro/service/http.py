"""The sweep service's HTTP API — stdlib ``http.server``, no new deps.

:class:`SweepService` composes a :class:`~repro.service.tenants.TenantRegistry`
and a :class:`~repro.service.jobs.JobQueue` under one on-disk root and
exposes them over a threaded HTTP server (one handler thread per
connection; job execution stays on the queue's worker pool).

Endpoints (all under ``/v1``; see docs/service.md for the operator's
handbook with request/response examples):

========  =============================  =======================================
method    path                           purpose
========  =============================  =======================================
GET       ``/v1/healthz``                liveness + uptime + queue depth
GET       ``/v1/metrics``                process-wide metrics snapshot (JSON)
GET       ``/v1/tenants``                per-tenant usage/quota snapshot
POST      ``/v1/jobs``                   submit a sweep (202, idempotent)
GET       ``/v1/jobs?tenant=T``          list the tenant's jobs
GET       ``/v1/jobs/<id>``              job status document
GET       ``/v1/jobs/<id>/events``       progress log as NDJSON (``follow=1``
                                         streams until the job is terminal)
GET       ``/v1/jobs/<id>/report``       the sweep report (text/plain),
                                         byte-identical to ``repro suite``
GET       ``/v1/jobs/<id>/artifacts``    artifact listing (JSON)
GET       ``/v1/jobs/<id>/artifacts/N``  one artifact (profile/flamegraph/...)
========  =============================  =======================================

Tenancy is declared per request — ``X-Repro-Tenant`` header, ``tenant``
query parameter, or ``tenant`` field of the POST body — and enforced by
namespace: a job id belonging to another tenant is a 404, never a 403,
so ids do not leak across namespaces.  Quota rejections are 429 with a
``Retry-After`` hint.  There is no authentication layer; deploy behind
a reverse proxy that authenticates and injects the tenant header (see
the handbook's security notes).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlparse

from ..common.errors import (InvalidParameterError, QuotaExceededError,
                             ReproError)
from ..trace.metrics import registry as _metrics
from .jobs import Job, JobQueue, JobSpec
from .tenants import TenantQuota, TenantRegistry

__all__ = ["SweepService", "serve"]

#: how long ``/events?follow=1`` waits for new events before polling again
_FOLLOW_POLL_S = 0.02


class SweepService:
    """One service instance: tenants + job queue + HTTP server factory.

    The service is fully defined by its ``root`` directory — journals,
    artifacts, and caches all live under it — so restarting a killed
    service over the same root recovers every finished cell through the
    sweep journals (``kill()``-then-``SweepService(root)`` is the crash
    drill in ``tests/test_service_http.py``).
    """

    def __init__(self, root: str | Path, *, workers: int = 4,
                 default_quota: TenantQuota | None = None):
        self.root = Path(root)
        self.tenants = TenantRegistry(
            self.root, default_quota=default_quota or TenantQuota())
        self.queue = JobQueue(self.tenants, workers=workers)
        self.started_at = time.time()
        self._server: ThreadingHTTPServer | None = None
        self._server_thread: threading.Thread | None = None

    # -- lifecycle --------------------------------------------------------
    def make_server(self, host: str = "127.0.0.1",
                    port: int = 0) -> ThreadingHTTPServer:
        """Bind the HTTP server (``port=0`` picks an ephemeral port)."""
        service = self

        class Handler(_SweepHandler):
            pass

        Handler.service = service

        class Server(ThreadingHTTPServer):
            # the stdlib default backlog (5) drops connections under a
            # few hundred concurrent clients; size it for the load test
            request_queue_size = 512

        server = Server((host, port), Handler)
        server.daemon_threads = True
        self._server = server
        return server

    def start(self, host: str = "127.0.0.1", port: int = 0) -> str:
        """Serve in a background thread; returns the base URL."""
        server = self.make_server(host, port)
        thread = threading.Thread(target=server.serve_forever,
                                  name="sweep-http", daemon=True)
        thread.start()
        self._server_thread = thread
        return self.url

    @property
    def url(self) -> str:
        if self._server is None:
            raise InvalidParameterError("server not started")
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def shutdown(self, *, drain: bool = True,
                 timeout: float | None = 30.0) -> None:
        """Stop serving; ``drain=True`` finishes admitted jobs first."""
        if drain:
            self.queue.drain(timeout)
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        self.queue.kill()

    def kill(self) -> None:
        """The crash drill: drop the HTTP server and abandon the queue
        without draining.  Only fsync'd journals survive — exactly what
        a power loss leaves behind."""
        self.shutdown(drain=False)

    # -- service-level documents ------------------------------------------
    def health(self) -> dict:
        jobs = self.queue.jobs()
        return {
            "status": "ok",
            "uptime_s": round(time.time() - self.started_at, 3),
            "tenants": len(self.tenants.names()),
            "jobs": {
                state: sum(1 for j in jobs if j.state == state)
                for state in ("queued", "running", "done", "degraded",
                              "failed")
            },
        }


class _SweepHandler(BaseHTTPRequestHandler):
    """Request handler bound to one :class:`SweepService` (class attr)."""

    service: SweepService = None  # injected by make_server
    protocol_version = "HTTP/1.1"
    server_version = "repro-sweepd/1"

    # -- plumbing ---------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # 500-client load tests must not spam stderr

    def _send_json(self, status: int, payload: dict,
                   headers: dict | None = None) -> None:
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; charset=utf-8") -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str,
               headers: dict | None = None) -> None:
        self._send_json(status, {"error": message}, headers)

    def _tenant(self, query: dict, body: dict | None = None) -> str | None:
        if body and body.get("tenant"):
            return str(body["tenant"])
        if query.get("tenant"):
            return query["tenant"][0]
        return self.headers.get("X-Repro-Tenant")

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw)
        except ValueError as exc:
            raise InvalidParameterError(f"request body is not JSON: {exc}")
        if not isinstance(payload, dict):
            raise InvalidParameterError("request body must be a JSON object")
        return payload

    # -- routing ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._route("POST")

    def _route(self, method: str) -> None:
        _metrics.counter("service.http_requests").inc()
        started = time.monotonic()
        try:
            self._dispatch(method)
        except QuotaExceededError as exc:
            self._error(429, str(exc), {"Retry-After": "1"})
        except InvalidParameterError as exc:
            self._error(400, str(exc))
        except ReproError as exc:
            self._error(500, f"{type(exc).__name__}: {exc}")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to answer
        except (ValueError, TypeError) as exc:
            # request validation that raises outside the ReproError
            # hierarchy (mis-typed JSON fields, bad numeric coercions):
            # still the client's fault, so a 400, not a dropped
            # connection with a stderr traceback
            self._error(400, f"{type(exc).__name__}: {exc}")
        finally:
            _metrics.histogram("service.http_latency_s").observe(
                time.monotonic() - started)

    def _dispatch(self, method: str) -> None:
        url = urlparse(self.path)
        query = parse_qs(url.query)
        parts = [p for p in url.path.split("/") if p]
        if not parts or parts[0] != "v1":
            return self._error(404, f"unknown path {url.path!r}")
        route = parts[1:]

        if method == "GET" and route == ["healthz"]:
            return self._send_json(200, self.service.health())
        if method == "GET" and route == ["metrics"]:
            return self._send_json(200, _metrics.snapshot())
        if method == "GET" and route == ["tenants"]:
            return self._send_json(200, self.service.tenants.snapshot())
        if route and route[0] == "jobs":
            return self._dispatch_jobs(method, route[1:], query)
        self._error(404, f"unknown path {url.path!r}")

    def _dispatch_jobs(self, method: str, route: list,
                       query: dict) -> None:
        if method == "POST" and not route:
            return self._submit(query)
        if method != "GET":
            return self._error(405, f"{method} not allowed here")
        if not route:
            return self._list_jobs(query)
        job = self.service.queue.get(route[0], tenant=self._tenant(query))
        if job is None:
            return self._error(404, f"no job {route[0]!r} in this namespace")
        rest = route[1:]
        if not rest:
            return self._send_json(200, job.snapshot())
        if rest == ["events"]:
            return self._stream_events(job, query)
        if rest == ["report"]:
            if job.report is None:
                return self._error(409, f"job {job.id} is {job.state}; "
                                        "no report yet")
            return self._send_text(200, job.report)
        if rest == ["artifacts"]:
            return self._send_json(200, {"artifacts": sorted(job.artifacts)})
        if len(rest) == 2 and rest[0] == "artifacts":
            return self._send_artifact(job, rest[1])
        self._error(404, f"unknown job subresource {'/'.join(rest)!r}")

    # -- endpoints --------------------------------------------------------
    def _submit(self, query: dict) -> None:
        body = self._read_body()
        tenant = self._tenant(query, body)
        if not tenant:
            return self._error(400, "no tenant: set the X-Repro-Tenant "
                                    "header or a 'tenant' body field")
        body.pop("tenant", None)
        spec = JobSpec.from_dict(body)
        job = self.service.queue.submit(tenant, spec)
        self._send_json(202, job.snapshot(),
                        {"Location": f"/v1/jobs/{job.id}"})

    def _list_jobs(self, query: dict) -> None:
        tenant = self._tenant(query)
        if not tenant:
            return self._error(400, "listing jobs requires a tenant")
        jobs = self.service.queue.jobs(tenant)
        self._send_json(200, {"jobs": [j.snapshot() for j in jobs]})

    def _stream_events(self, job: Job, query: dict) -> None:
        """NDJSON event stream: the job's progress log, one JSON object
        per line.  ``follow=1`` keeps the response open, emitting events
        as they happen, until the job is terminal (or ``timeout``
        seconds pass, default 60)."""
        follow = query.get("follow", ["0"])[0] in ("1", "true", "yes")
        try:
            timeout = float(query.get("timeout", ["60"])[0])
            since = int(query.get("since", ["0"])[0])
        except ValueError:
            raise InvalidParameterError(
                "'timeout' and 'since' query parameters must be numeric")
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        # stream until done: chunked-less, so close delimits the body
        self.send_header("Connection", "close")
        self.end_headers()
        deadline = time.monotonic() + timeout
        cursor = since
        while True:
            events = job.events(cursor)
            for event in events:
                line = json.dumps(event, sort_keys=True,
                                  separators=(",", ":")) + "\n"
                self.wfile.write(line.encode())
            cursor += len(events)
            if events:
                self.wfile.flush()
            if not follow or job.done or time.monotonic() > deadline:
                break
            time.sleep(_FOLLOW_POLL_S)
        # terminal drain: events emitted between the last read and the
        # done-flag flip
        for event in job.events(cursor):
            line = json.dumps(event, sort_keys=True,
                              separators=(",", ":")) + "\n"
            self.wfile.write(line.encode())

    def _send_artifact(self, job: Job, name: str) -> None:
        path = job.artifacts.get(name)
        if path is None:
            return self._error(
                404, f"job {job.id} has no artifact {name!r}; "
                     f"available: {sorted(job.artifacts)}")
        try:
            data = Path(path).read_bytes()
        except OSError as exc:
            return self._error(500, f"artifact unreadable: {exc}")
        content_type = ("application/json" if name.endswith(".json")
                        else "text/plain; charset=utf-8")
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)


def serve(root: str | Path, *, host: str = "127.0.0.1", port: int = 8077,
          workers: int = 4, default_quota: TenantQuota | None = None,
          quiet: bool = False) -> int:
    """Run a sweep service in the foreground until interrupted
    (the ``repro serve`` entry point)."""
    service = SweepService(root, workers=workers,
                           default_quota=default_quota)
    server = service.make_server(host, port)
    if not quiet:
        print(f"repro sweep service on http://{host}:{server.server_address[1]}"
              f" (root: {service.root}, {workers} sweep workers)")
        print("endpoints: POST /v1/jobs  GET /v1/jobs/<id>[/events|/report]"
              "  GET /v1/healthz  GET /v1/metrics  GET /v1/tenants")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        if not quiet:
            print("\ndraining jobs before shutdown...")
        service.shutdown(drain=True)
    return 0
