"""Synthetic load generator for the sweep service (``repro loadgen``).

Drives hundreds of concurrent HTTP clients against a service — either an
external one (``url=...``) or a self-hosted in-process instance — and
verifies the service's two hard promises under load:

* **zero dropped jobs** — every accepted (202) submission reaches a
  terminal state; every quota rejection is an explicit 429, never a
  silent loss;
* **golden-verified, byte-identical reports** — each cleanly completed
  (``done``) job's ``/report`` body must equal the report the batch
  ``repro suite`` path produces for the same spec, byte for byte.
  ``degraded`` jobs — a documented terminal state whose report carries
  :class:`~repro.resilience.FailedCell` rows — are tallied separately
  and exempt from the byte comparison.

Each client thread submits its jobs with a unique ``tag`` so the
deterministic job ids don't collapse the fleet into one idempotent job,
then polls to a terminal state and fetches the report.  Expected reports
are computed once per distinct spec shape through the same
:func:`~repro.harness.runner.run_suite_functional` engine the service
uses.  Results (latency percentiles, per-state tallies, the service's
metrics and tenant snapshots, and a merged Chrome trace when
self-hosting) are written under ``out`` for CI to upload.

The CI gate (see ``.github/workflows/ci.yml``, job ``service-loadtest``)
runs ``repro loadgen --clients 500 --quick`` and fails on any dropped
job or golden mismatch — exit code 1.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from ..altis.base import Variant
from ..common.errors import InvalidParameterError
from ..harness.reporting import render_suite_report
from ..harness.runner import run_suite_functional
from ..trace.export import write_chrome_trace
from ..trace.metrics import registry as _metrics
from ..trace.spans import tracing
from .jobs import JobSpec
from .tenants import TenantQuota

__all__ = ["run_loadgen", "LoadgenError"]

#: poll cadence while waiting for a job to reach a terminal state
_POLL_S = 0.02


class LoadgenError(RuntimeError):
    """The load test violated a gate (dropped jobs or golden mismatch)."""


def _http(method: str, url: str, payload: dict | None = None,
          timeout: float = 30.0, attempts: int = 5) -> tuple[int, bytes]:
    """One HTTP exchange with bounded retry on connection-level faults.

    Retrying a ``POST /v1/jobs`` is safe because submissions are
    idempotent by deterministic job id — a duplicate of an accepted
    submission returns the same job, never a second run.
    """
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    for attempt in range(attempts):
        request = Request(url, data=data, headers=headers, method=method)
        try:
            with urlopen(request, timeout=timeout) as response:
                return response.status, response.read()
        except HTTPError as exc:
            return exc.code, exc.read()
        except (ConnectionError, TimeoutError, URLError):
            if attempt == attempts - 1:
                raise
            time.sleep(0.01 * (attempt + 1))


class _Client(threading.Thread):
    """One synthetic tenant client: submit, poll, fetch, verify."""

    def __init__(self, index: int, base_url: str, tenant: str,
                 specs: list, expected: dict, stats: "_Stats"):
        super().__init__(name=f"loadgen-client-{index}", daemon=True)
        self.index = index
        self.base_url = base_url
        self.tenant = tenant
        self.specs = specs
        self.expected = expected
        self.stats = stats

    def run(self) -> None:
        for spec in self.specs:
            try:
                self._one_job(spec)
            except (URLError, OSError, TimeoutError) as exc:
                self.stats.record_drop(f"client {self.index}: {exc}")

    def _one_job(self, spec: JobSpec) -> None:
        t0 = time.monotonic()
        body = dict(spec.to_dict(), tenant=self.tenant)
        status, raw = _http("POST", f"{self.base_url}/v1/jobs", body)
        if status == 429:
            self.stats.record_rejected()
            return
        if status != 202:
            self.stats.record_drop(
                f"client {self.index}: submit -> HTTP {status}: "
                f"{raw[:200]!r}")
            return
        jid = json.loads(raw)["id"]
        state = self._poll(jid)
        latency = time.monotonic() - t0
        if state is None:
            self.stats.record_drop(
                f"client {self.index}: job {jid} never reached a "
                "terminal state")
            return
        if state == "failed":
            self.stats.record_failed(latency)
            return
        if state == "degraded":
            # a degraded sweep is a documented terminal state whose
            # report legitimately carries FailedCell rows (a fault plan
            # exhausted the retry budget), so it can never match the
            # clean batch report byte-for-byte — tally it instead of
            # recording a spurious golden mismatch
            self.stats.record_ok(state, latency)
            return
        status, report = _http(
            "GET", f"{self.base_url}/v1/jobs/{jid}/report?tenant="
                   f"{self.tenant}")
        if status != 200:
            self.stats.record_drop(
                f"client {self.index}: report for {jid} -> HTTP {status}")
            return
        want = self.expected[_spec_shape(spec)]
        if report.decode() != want:
            self.stats.record_mismatch(
                f"client {self.index}: job {jid} report diverged from "
                "the batch suite path")
            return
        self.stats.record_ok(state, latency)

    def _poll(self, jid: str, timeout: float = 120.0) -> str | None:
        deadline = time.monotonic() + timeout
        url = f"{self.base_url}/v1/jobs/{jid}?tenant={self.tenant}"
        while time.monotonic() < deadline:
            status, raw = _http("GET", url)
            if status == 200:
                doc = json.loads(raw)
                if doc["state"] in ("done", "degraded", "failed"):
                    return doc["state"]
            time.sleep(_POLL_S)
        return None


class _Stats:
    """Thread-safe tally of client outcomes."""

    def __init__(self):
        self.lock = threading.Lock()
        self.submitted = 0
        self.completed = 0
        self.degraded = 0
        self.failed = 0
        self.rejected = 0
        self.dropped: list[str] = []
        self.mismatches: list[str] = []
        self.latencies: list[float] = []

    def record_ok(self, state: str, latency: float) -> None:
        with self.lock:
            self.submitted += 1
            self.latencies.append(latency)
            if state == "degraded":
                self.degraded += 1
            else:
                self.completed += 1

    def record_failed(self, latency: float) -> None:
        with self.lock:
            self.submitted += 1
            self.failed += 1
            self.latencies.append(latency)

    def record_rejected(self) -> None:
        with self.lock:
            self.rejected += 1

    def record_drop(self, detail: str) -> None:
        with self.lock:
            self.submitted += 1
            self.dropped.append(detail)

    def record_mismatch(self, detail: str) -> None:
        with self.lock:
            self.submitted += 1
            self.mismatches.append(detail)

    def _percentile(self, q: float) -> float | None:
        if not self.latencies:
            return None
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return round(ordered[index], 6)

    def summary(self) -> dict:
        with self.lock:
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "degraded": self.degraded,
                "failed": self.failed,
                "rejected": self.rejected,
                "dropped": len(self.dropped),
                "dropped_detail": self.dropped[:20],
                "golden_mismatches": len(self.mismatches),
                "mismatch_detail": self.mismatches[:20],
                "latency_s": {
                    "p50": self._percentile(0.50),
                    "p95": self._percentile(0.95),
                    "p99": self._percentile(0.99),
                },
            }


def _spec_shape(spec: JobSpec) -> tuple:
    """The fields that determine a spec's report (tag excluded — tags
    namespace identity, not results)."""
    return (spec.device, spec.variant, spec.mode, spec.resolved_configs())


def _expected_reports(specs: list) -> dict:
    """Golden reports, one batch-engine run per distinct spec shape."""
    expected = {}
    for spec in specs:
        shape = _spec_shape(spec)
        if shape in expected:
            continue
        results = run_suite_functional(
            spec.device, Variant(spec.variant), mode=spec.mode,
            configs=spec.resolved_configs())
        expected[shape] = render_suite_report(results) + "\n"
    return expected


def run_loadgen(url: str | None = None, *, clients: int = 50,
                jobs_per_client: int = 1, tenants: int = 2,
                configs: tuple = ("Where",), inject_faults: str | None = None,
                retries: int = 2, quick: bool = False,
                service_workers: int = 8, out: str | Path | None = None,
                quiet: bool = False) -> dict:
    """Run the synthetic load test; returns the summary document.

    ``url=None`` self-hosts an in-process :class:`SweepService` (with
    tracing installed, so the merged Chrome trace lands in ``out``);
    ``quick=True`` shrinks every job to the 1-cell ``Where`` sweep so a
    500-client run finishes in CI time.  Raises :class:`LoadgenError` if
    any job is dropped or any report diverges from the batch path.
    """
    if clients < 1 or jobs_per_client < 1 or tenants < 1:
        raise InvalidParameterError(
            "clients, jobs_per_client, and tenants must all be >= 1")
    if quick:
        configs = ("Where",)

    tenant_names = [f"load-{i}" for i in range(tenants)]
    # each client gets a unique tag per job: distinct deterministic ids,
    # so the fleet doesn't collapse into one idempotent submission
    plans = []
    for c in range(clients):
        specs = [JobSpec(configs=tuple(configs), retries=retries,
                         inject_faults=inject_faults, fault_seed=c,
                         tag=f"c{c}-j{j}")
                 for j in range(jobs_per_client)]
        plans.append((tenant_names[c % tenants], specs))
    expected = _expected_reports([s for _, specs in plans for s in specs])

    out_dir = Path(out) if out is not None else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)

    stats = _Stats()
    started = time.monotonic()
    if url is None:
        from .http import SweepService  # self-hosted mode

        if out_dir is not None:
            root = out_dir / "service_root"
        else:
            import tempfile
            root = Path(tempfile.mkdtemp(prefix="repro-loadgen-"))
        # budget quotas for the whole fleet: loadgen tests throughput,
        # not admission control, so nothing should bounce off a quota
        quota = TenantQuota(
            max_active_jobs=max(8, clients * jobs_per_client),
            max_total_cells=max(100_000,
                                clients * jobs_per_client * len(configs) * 2))
        with tracing(pid="sweep-service") as tracer:
            service = SweepService(root, workers=service_workers,
                                   default_quota=quota)
            base_url = service.start()
            try:
                _drive(plans, base_url, expected, stats)
            finally:
                service.shutdown(drain=True)
            if out_dir is not None:
                write_chrome_trace(out_dir / "trace.json", tracer.events(),
                                   metrics=_metrics.snapshot())
            tenants_snapshot = service.tenants.snapshot()
    else:
        _drive(plans, url, expected, stats)
        status, raw = _http("GET", f"{url}/v1/tenants")
        tenants_snapshot = json.loads(raw) if status == 200 else {}

    summary = stats.summary()
    summary["clients"] = clients
    summary["jobs_per_client"] = jobs_per_client
    summary["tenants"] = tenants
    summary["configs"] = list(configs)
    summary["wall_s"] = round(time.monotonic() - started, 3)
    if out_dir is not None:
        (out_dir / "loadgen.json").write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n")
        (out_dir / "metrics.json").write_text(
            json.dumps(_metrics.snapshot(), indent=2, sort_keys=True) + "\n")
        (out_dir / "tenants.json").write_text(
            json.dumps(tenants_snapshot, indent=2, sort_keys=True) + "\n")
    if not quiet:
        print(_render(summary))
    if summary["dropped"] or summary["golden_mismatches"]:
        raise LoadgenError(
            f"load test gate violated: {summary['dropped']} dropped "
            f"job(s), {summary['golden_mismatches']} golden mismatch(es)")
    return summary


def _drive(plans: list, base_url: str, expected: dict,
           stats: _Stats) -> None:
    threads = [
        _Client(i, base_url, tenant, specs, expected, stats)
        for i, (tenant, specs) in enumerate(plans)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def _render(summary: dict) -> str:
    lines = [
        "loadgen summary",
        f"  clients x jobs : {summary['clients']} x "
        f"{summary['jobs_per_client']} over {summary['tenants']} tenant(s)",
        f"  submitted      : {summary['submitted']} "
        f"(+{summary['rejected']} quota-rejected)",
        f"  completed      : {summary['completed']} done, "
        f"{summary['degraded']} degraded, {summary['failed']} failed",
        f"  dropped        : {summary['dropped']}",
        f"  golden check   : {summary['golden_mismatches']} mismatch(es)",
        f"  latency        : p50={summary['latency_s']['p50']}s "
        f"p95={summary['latency_s']['p95']}s "
        f"p99={summary['latency_s']['p99']}s",
        f"  wall time      : {summary['wall_s']}s",
    ]
    return "\n".join(lines)
