"""Tenant namespaces and admission quotas for the sweep service.

Every piece of state the service persists — sweep journals, report and
profile artifacts, the figure cache — lives under one directory per
tenant (``<root>/tenants/<name>/``), so tenants can never read or
clobber each other's results and an operator can meter, back up, or
delete one tenant without touching the rest.

Admission control is deliberately simple and deterministic:

* ``max_active_jobs`` — how many jobs a tenant may have queued or
  running at once; the cap on a tenant's instantaneous load;
* ``max_total_cells`` — a lifetime budget of sweep cells (one cell =
  one benchmark configuration executed); the cap on a tenant's
  cumulative compute.

A submission that would exceed either limit raises
:class:`~repro.common.errors.QuotaExceededError`, which the HTTP layer
maps to ``429 Too Many Requests`` — the service never silently queues
beyond a tenant's budget.  Cells are charged at admission (the
journal-resume path re-credits nothing: a resubmitted sweep is charged
only for the cells it still has to execute — see
:meth:`JobQueue.submit <repro.service.jobs.JobQueue.submit>`).
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass
from pathlib import Path

from ..common.errors import InvalidParameterError, QuotaExceededError
from ..harness.resultdb import FigureCache

__all__ = ["TenantQuota", "Tenant", "TenantRegistry", "DEFAULT_QUOTA"]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits for one tenant.

    >>> TenantQuota().max_active_jobs
    8
    >>> TenantQuota(max_active_jobs=1, max_total_cells=13).max_total_cells
    13
    """

    #: jobs simultaneously queued or running
    max_active_jobs: int = 8
    #: lifetime budget of sweep cells admitted for execution
    max_total_cells: int = 100_000

    def __post_init__(self):
        if self.max_active_jobs < 1:
            raise InvalidParameterError(
                f"max_active_jobs must be >= 1, got {self.max_active_jobs!r}")
        if self.max_total_cells < 1:
            raise InvalidParameterError(
                f"max_total_cells must be >= 1, got {self.max_total_cells!r}")


DEFAULT_QUOTA = TenantQuota()


class Tenant:
    """One tenant's namespace: directories, quota, and usage counters."""

    def __init__(self, name: str, root: Path, quota: TenantQuota):
        self.name = name
        self.root = Path(root)
        self.quota = quota
        self.active_jobs = 0
        self.cells_used = 0
        self.jobs_admitted = 0
        self.jobs_rejected = 0
        self._lock = threading.Lock()
        self._cache: FigureCache | None = None

    # -- namespace layout -------------------------------------------------
    @property
    def journals_dir(self) -> Path:
        return self.root / "journals"

    @property
    def artifacts_dir(self) -> Path:
        return self.root / "artifacts"

    @property
    def cache_dir(self) -> Path:
        return self.root / "cache"

    def journal_path(self, sweep_id: str) -> Path:
        """The tenant-scoped journal for one sweep identity."""
        return self.journals_dir / f"{sweep_id}.journal"

    def artifact_dir(self, job_id: str) -> Path:
        return self.artifacts_dir / job_id

    def figure_cache(self) -> FigureCache:
        """The tenant's private :class:`FigureCache` (lazily created).

        Figure jobs running through the service read and write here, so
        one tenant's warm cache can never serve (or be poisoned by)
        another tenant's entries.
        """
        if self._cache is None:
            self._cache = FigureCache(root=self.cache_dir)
        return self._cache

    # -- admission --------------------------------------------------------
    def admit(self, cells: int) -> None:
        """Charge a submission of ``cells`` sweep cells, or raise
        :class:`QuotaExceededError` without charging anything."""
        with self._lock:
            if self.active_jobs + 1 > self.quota.max_active_jobs:
                self.jobs_rejected += 1
                raise QuotaExceededError(
                    f"tenant {self.name!r} already has {self.active_jobs} "
                    f"active job(s) (quota: {self.quota.max_active_jobs})",
                    tenant=self.name, quota="max_active_jobs")
            if self.cells_used + cells > self.quota.max_total_cells:
                self.jobs_rejected += 1
                raise QuotaExceededError(
                    f"tenant {self.name!r} would exceed its cell budget: "
                    f"{self.cells_used} used + {cells} requested > "
                    f"{self.quota.max_total_cells}",
                    tenant=self.name, quota="max_total_cells")
            self.active_jobs += 1
            self.cells_used += cells
            self.jobs_admitted += 1

    def release(self) -> None:
        """A job reached a terminal state; free its active-job slot."""
        with self._lock:
            self.active_jobs = max(0, self.active_jobs - 1)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "active_jobs": self.active_jobs,
                "cells_used": self.cells_used,
                "jobs_admitted": self.jobs_admitted,
                "jobs_rejected": self.jobs_rejected,
                "quota": {
                    "max_active_jobs": self.quota.max_active_jobs,
                    "max_total_cells": self.quota.max_total_cells,
                },
            }


class TenantRegistry:
    """Get-or-create registry of tenants under one service root.

    Tenants are created on first submission with ``default_quota``
    (multi-tenancy without pre-registration); :meth:`configure` pins a
    specific quota for a named tenant.
    """

    def __init__(self, root: str | Path, *,
                 default_quota: TenantQuota = DEFAULT_QUOTA):
        self.root = Path(root)
        self.default_quota = default_quota
        self._tenants: dict[str, Tenant] = {}
        self._lock = threading.Lock()

    def get(self, name: str) -> Tenant:
        if not _NAME_RE.match(name or ""):
            raise InvalidParameterError(
                f"invalid tenant name {name!r}: expected 1-64 chars of "
                "[A-Za-z0-9_.-], starting alphanumeric")
        with self._lock:
            tenant = self._tenants.get(name)
            if tenant is None:
                tenant = Tenant(name, self.root / "tenants" / name,
                                self.default_quota)
                self._tenants[name] = tenant
            return tenant

    def configure(self, name: str, quota: TenantQuota) -> Tenant:
        """Pin ``quota`` for tenant ``name`` (created if needed)."""
        tenant = self.get(name)
        tenant.quota = quota
        return tenant

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    def snapshot(self) -> dict:
        """Per-tenant usage snapshot (the ``/v1/tenants`` payload)."""
        return {name: self.get(name).snapshot() for name in self.names()}
