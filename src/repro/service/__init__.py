"""The sweep service: the suite harness as a long-running job server.

Everything the batch harness can do — resilient sweeps over the 13-config
Altis-SYCL suite, fault injection, journal-backed crash recovery,
profiling — promoted to a multi-tenant service:

* :mod:`repro.service.jobs` — the async job queue: sweeps as jobs with
  deterministic ids, ``queued → running → done | degraded | failed``
  states, per-job progress events, and journal-keyed checkpoint-resume;
* :mod:`repro.service.tenants` — per-tenant namespaces (journals,
  artifacts, figure cache) and admission quotas;
* :mod:`repro.service.http` — the stdlib-only HTTP API (submit, poll,
  NDJSON event streaming, report/artifact fetch);
* :mod:`repro.service.loadgen` — the synthetic load generator and CI
  gate (zero dropped jobs, byte-identical golden reports).

``repro serve`` and ``repro loadgen`` are the CLI entry points; the
operator's handbook is docs/service.md.
"""

from .jobs import (STATES, TERMINAL_STATES, Job, JobQueue, JobSpec, job_id,
                   sweep_id)
from .loadgen import LoadgenError, run_loadgen
from .tenants import DEFAULT_QUOTA, Tenant, TenantQuota, TenantRegistry

__all__ = [
    "STATES",
    "TERMINAL_STATES",
    "Job",
    "JobQueue",
    "JobSpec",
    "job_id",
    "sweep_id",
    "Tenant",
    "TenantQuota",
    "TenantRegistry",
    "DEFAULT_QUOTA",
    "LoadgenError",
    "run_loadgen",
    "SweepService",
    "serve",
]


def __getattr__(name):
    # http.py is imported lazily so `import repro.service` stays cheap
    # for callers that only need JobSpec/ids (no server machinery)
    if name in ("SweepService", "serve"):
        from . import http as _http
        return getattr(_http, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
